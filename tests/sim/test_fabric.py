"""Tests for the oversubscribed-core fabric and stacked compression."""

from __future__ import annotations

import pytest

from repro.sim import ClusterConfig, simulate
from repro.strategies import baseline, p3, p3_with_compression


def test_oversubscription_validation():
    with pytest.raises(ValueError):
        ClusterConfig(oversubscription=0.5)
    ClusterConfig(oversubscription=1.0)  # no fabric, fine


def test_oversubscription_monotone_slowdown(tiny_model):
    times = []
    for ratio in (1.0, 2.0, 8.0):
        cfg = ClusterConfig(n_workers=4, bandwidth_gbps=2.0,
                            oversubscription=ratio)
        r = simulate(tiny_model, baseline(), cfg, iterations=4, warmup=1)
        times.append(r.mean_iteration_time)
    assert times[0] <= times[1] <= times[2]
    assert times[2] > times[0]


def test_oversubscription_ratio_one_matches_no_fabric(tiny_model):
    """ratio == 1 must not add a serialization stage."""
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=1.0, oversubscription=1.0)
    r = simulate(tiny_model, p3(), cfg, iterations=4, warmup=1)
    base = simulate(tiny_model, p3(),
                    ClusterConfig(n_workers=4, bandwidth_gbps=1.0),
                    iterations=4, warmup=1)
    assert r.mean_iteration_time == pytest.approx(base.mean_iteration_time)


def test_core_bottleneck_erases_p3_advantage(tiny_model):
    """A FIFO core switch cannot honour end-host priorities: when it is
    the bottleneck, P3 ≈ baseline."""
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=2.0, oversubscription=8.0)
    base = simulate(tiny_model, baseline(), cfg, iterations=4, warmup=1)
    fast = simulate(tiny_model, p3(), cfg, iterations=4, warmup=1)
    assert fast.throughput == pytest.approx(base.throughput, rel=0.1)


def test_fabric_works_with_background_traffic(tiny_model):
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=1.0,
                        oversubscription=2.0, background_load=0.3)
    r = simulate(tiny_model, baseline(), cfg, iterations=3, warmup=1)
    assert r.throughput > 0


def test_p3_with_compression_factory():
    s = p3_with_compression(0.01)
    assert s.prioritized and s.slice_params == 50_000
    assert s.gradient_scale == pytest.approx(0.02)
    with pytest.raises(ValueError):
        p3_with_compression(0.9)


def test_compression_stacks_on_p3(skewed_model):
    """Section 6: compression is orthogonal and composes with P3."""
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=0.2)
    plain = simulate(skewed_model, p3(), cfg, iterations=4, warmup=1)
    stacked = simulate(skewed_model, p3_with_compression(0.01), cfg,
                       iterations=4, warmup=1)
    assert stacked.throughput > 2.0 * plain.throughput
