"""Unit and property tests for the flat-array event heap.

:class:`repro.sim._fastheap.FlatHeap` must be *ordering-identical* to
the engine's tuple heap: entries pop in ``(time, seq)`` order, bulk
loading only rearranges the heap internally, and cancellation is an
O(1) tombstone whose token can never hit the wrong event — not after
the event fired, not after the slot was recycled.  These tests pin each
of those guarantees directly against the class, below the engine.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim._fastheap import FlatHeap, check_heap, flatheap_impl, heap_extend


def drain(fh: FlatHeap) -> list:
    out = []
    while True:
        item = fh.pop()
        if item is None:
            return out
        out.append(item)


# ----------------------------------------------------------------------
# Ordering
# ----------------------------------------------------------------------
def test_pop_orders_by_time():
    fh = FlatHeap()
    for t in (3.0, 1.0, 2.0, 0.5):
        fh.push_noh(t, str, (t,))
    assert [t for t, _fn, _a in drain(fh)] == [0.5, 1.0, 2.0, 3.0]


def test_ties_pop_in_push_order():
    fh = FlatHeap()
    for i in range(8):
        fh.push_noh(1.0, str, (i,))
    assert [a[0] for _t, _fn, a in drain(fh)] == list(range(8))


def test_push_batch_matches_individual_pushes():
    times = [5.0, 5.0, 7.0, 7.0, 9.0] * 8  # big enough to take heapify
    a = FlatHeap()
    a.push_batch(times, str, [(i,) for i in range(len(times))])
    b = FlatHeap()
    for i, t in enumerate(times):
        b.push_noh(t, str, (i,))
    assert drain(a) == drain(b)


def test_batch_interleaves_with_singles_in_seq_order():
    fh = FlatHeap()
    fh.push_noh(1.0, str, ("early",))
    fh.push_batch([1.0, 1.0], str, [("b0",), ("b1",)])
    fh.push_noh(1.0, str, ("late",))
    assert [a[0] for _t, _fn, a in drain(fh)] == \
        ["early", "b0", "b1", "late"]


# ----------------------------------------------------------------------
# Cancellation tombstones
# ----------------------------------------------------------------------
def test_cancel_tombstones_event():
    fh = FlatHeap()
    fh.push_noh(1.0, str, ("keep",))
    slot, seq = fh.push(2.0, str, ("drop",))
    assert fh.cancel(slot, seq) is True
    assert [a[0] for _t, _fn, a in drain(fh)] == ["keep"]


def test_cancel_is_idempotent():
    fh = FlatHeap()
    slot, seq = fh.push(1.0, str, ())
    assert fh.cancel(slot, seq) is True
    assert fh.cancel(slot, seq) is False


def test_cancel_after_pop_is_stale():
    fh = FlatHeap()
    slot, seq = fh.push(1.0, str, ())
    assert fh.pop() is not None
    assert fh.cancel(slot, seq) is False


def test_stale_token_cannot_kill_recycled_slot():
    """A token kept past its event's pop must not cancel the *new*
    event that recycled the slot — the per-slot seq check rejects it."""
    fh = FlatHeap()
    slot, seq = fh.push(1.0, str, ("old",))
    fh.pop()
    slot2, _seq2 = fh.push(2.0, str, ("new",))
    assert slot2 == slot  # free list recycled the slot
    assert fh.cancel(slot, seq) is False
    assert [a[0] for _t, _fn, a in drain(fh)] == ["new"]


def test_peek_time_drops_leading_tombstones():
    fh = FlatHeap()
    slot, seq = fh.push(1.0, str, ())
    fh.push_noh(2.0, str, ())
    fh.cancel(slot, seq)
    assert fh.peek_time() == 2.0
    assert fh.live_count() == 1


def test_free_list_reuse_bounds_slot_table():
    fh = FlatHeap()
    for round_ in range(50):
        fh.push_noh(float(round_), str, ())
        fh.pop()
    assert len(fh.fns) == 1  # one slot, recycled 50 times


# ----------------------------------------------------------------------
# heap_extend / invariants
# ----------------------------------------------------------------------
def test_heap_extend_small_and_large_batches_keep_invariant():
    for k in (1, 8, 9, 64, 500):
        heap = [(float(i), i, None) for i in range(0, 40, 3)]
        entries = [(float(j % 7), 1000 + j, None) for j in range(k)]
        import heapq

        heapq.heapify(heap)
        heap_extend(heap, entries)
        check_heap(heap)
        assert len(heap) == 14 + k


def test_check_heap_raises_on_violation():
    with pytest.raises(AssertionError):
        check_heap([(5.0, 1, None), (1.0, 0, None)])


def test_check_invariants_accepts_tombstoned_heap():
    fh = FlatHeap()
    fh.push_batch([1.0, 2.0, 3.0], str)
    slot, seq = fh.push(4.0, str, ())
    fh.cancel(slot, seq)
    fh.pop()
    fh.check_invariants()


def test_flatheap_impl_resolves_python_fallback(monkeypatch):
    """No compiled extension ships; every spelling must fall back."""
    from repro.sim import _fastheap

    for requested in ("", "compiled", "c", "auto", "COMPILED"):
        monkeypatch.setattr(_fastheap, "_impl_cache", None)
        monkeypatch.setenv(_fastheap.FASTHEAP_IMPL_ENV, requested)
        cls, name = _fastheap.flatheap_impl()
        assert cls is FlatHeap
        assert name == "python"


def test_flatheap_impl_is_memoized():
    assert flatheap_impl() is flatheap_impl()


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1e6,
                                    allow_nan=False),
                          st.booleans()),
                max_size=80))
@settings(max_examples=60, deadline=None)
def test_property_pop_order_matches_sorted_reference(entries):
    """Live events pop exactly in ``(time, push-order)`` — the same total
    order ``sorted`` produces on ``(time, seq)`` — regardless of the mix
    of singles, batches, and cancellations."""
    fh = FlatHeap()
    reference = []  # (time, seq, idx) for live entries
    tokens = []
    for i, (t, cancellable) in enumerate(entries):
        if cancellable:
            slot, seq = fh.push(t, str, (i,))
            tokens.append((slot, seq, t, i))
        else:
            fh.push_noh(t, str, (i,))
            reference.append((t, i))
    # Cancel every other cancellable entry.
    for j, (slot, seq, t, i) in enumerate(tokens):
        if j % 2:
            assert fh.cancel(slot, seq) is True
        else:
            reference.append((t, i))
    fh.check_invariants()
    got = [(t, a[0]) for t, _fn, a in drain(fh)]
    # seq increases with i, so sorting on (time, i) is the engine order.
    assert got == sorted(reference)


@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False),
                min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_property_batch_and_single_loading_agree(times):
    """Bulk loading changes the arrangement, never the pop order."""
    srt = sorted(times)
    a = FlatHeap()
    a.push_batch(srt, str, [(i,) for i in range(len(srt))])
    b = FlatHeap()
    for i, t in enumerate(srt):
        b.push_noh(t, str, (i,))
    a.check_invariants()
    assert drain(a) == drain(b)
