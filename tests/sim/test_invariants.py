"""Property/invariant harness for the cluster simulator.

Randomized small clusters, every synchronization strategy, with and
without fault plans: the reusable checkers in
:mod:`repro.sim.invariants` must hold throughout —

* total bytes received == total bytes sent, per flow and per channel;
* the event clock never goes backwards;
* every gradient slice generated is applied exactly once;
* a forward pass never consumes a parameter before its synchronization
  round completed.

Faults (:mod:`repro.sim.faults`) reshape timing only, so the same
checks must pass under stragglers, link flaps and server stalls.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.base import LayerSpec, ModelSpec
from repro.sim import (
    ClusterConfig,
    ClusterSim,
    FaultPlan,
    InvariantMonitor,
    InvariantViolation,
    LinkFault,
    ServerStallFault,
    StragglerFault,
    simulate_checked,
)
from repro.strategies import (
    asgd,
    baseline,
    credit_p3,
    p3,
    slicing_only,
    tensorflow_style,
)

STRATEGIES = {
    "baseline": baseline,
    "slicing": slicing_only,
    "p3": p3,
    "tensorflow": tensorflow_style,
    "asgd": asgd,
    "credit_p3": credit_p3,
}

# Fault schedules sized for the sub-100ms iterations of the tiny random
# models below; every fault recovers so runs always drain.
FAULT_PLANS = {
    "none": None,
    "straggler": FaultPlan(
        (StragglerFault(worker=0, factor=2.5, start=0.0, duration=0.01,
                        period=0.03),),
        seed=3),
    "link_flap": FaultPlan(
        (LinkFault(machine=1, rate_factor=0.0, start=0.005, duration=0.004,
                   period=0.02, jitter=0.01),),
        seed=5),
    "server_stall": FaultPlan(
        (ServerStallFault(server=0, start=0.002, duration=0.015,
                          period=0.05),),
        seed=9),
    "combined": FaultPlan(
        (StragglerFault(worker=1, factor=4.0, start=0.0, duration=0.02,
                        period=0.06, jitter=0.01),
         LinkFault(machine=0, rate_factor=0.2, start=0.01, duration=0.01,
                   period=0.04),
         ServerStallFault(server=1, start=0.0, duration=0.01, period=0.05)),
        seed=11),
}


def random_model(seed: int) -> ModelSpec:
    """A small random DNN descriptor: 3-6 layers, skewed sizes."""
    rng = np.random.default_rng(seed)
    n_layers = int(rng.integers(3, 7))
    layers = tuple(
        LayerSpec(f"l{i}", int(rng.integers(5_000, 150_000)),
                  float(rng.uniform(0.5, 4.0)))
        for i in range(n_layers)
    )
    return ModelSpec(name=f"rand{seed}", layers=layers, batch_size=8,
                     samples_per_sec=500.0)


def run_checked(model: ModelSpec, strategy, plan, *, n_workers: int = 2,
                seed: int = 0, iterations: int = 4) -> InvariantMonitor:
    cfg = ClusterConfig(n_workers=n_workers, bandwidth_gbps=1.0,
                        fault_plan=plan, seed=seed)
    cluster = ClusterSim(model, strategy, cfg)
    monitor = InvariantMonitor(cluster)
    cluster.run(iterations=iterations, warmup=1)
    monitor.assert_all_final()
    return monitor


# ----------------------------------------------------------------------
# The full strategy x fault-plan matrix on randomized clusters
# ----------------------------------------------------------------------
@pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
@pytest.mark.parametrize("strategy_name", sorted(STRATEGIES))
def test_invariants_hold(strategy_name, plan_name):
    monitor = run_checked(random_model(seed=42), STRATEGIES[strategy_name](),
                          FAULT_PLANS[plan_name])
    stats = monitor.summary()
    assert stats["messages_sent"] == stats["messages_delivered"]
    assert stats["pushes_delivered"] == stats["contribs_consumed"] > 0


@pytest.mark.parametrize("model_seed", [1, 7, 23])
@pytest.mark.parametrize("plan_name", ["none", "combined"])
def test_invariants_hold_on_random_models(model_seed, plan_name):
    for strategy_name in ("baseline", "p3"):
        run_checked(random_model(model_seed), STRATEGIES[strategy_name](),
                    FAULT_PLANS[plan_name], seed=model_seed)


@given(model_seed=st.integers(min_value=0, max_value=10**6),
       n_workers=st.integers(min_value=2, max_value=4))
@settings(max_examples=10, deadline=None)
def test_property_p3_invariants_under_faults(model_seed, n_workers):
    """Hypothesis sweep: arbitrary tiny clusters keep every invariant
    under the combined fault plan."""
    run_checked(random_model(model_seed), p3(), FAULT_PLANS["combined"],
                n_workers=n_workers, seed=model_seed, iterations=3)


# ----------------------------------------------------------------------
# The checkers themselves must detect violations (non-vacuity)
# ----------------------------------------------------------------------
@pytest.fixture
def clean_monitor(tiny_model) -> InvariantMonitor:
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=1.0, seed=0)
    cluster = ClusterSim(tiny_model, p3(), cfg)
    monitor = InvariantMonitor(cluster)
    cluster.run(iterations=3, warmup=1)
    return monitor


def test_checker_detects_lost_message(clean_monitor):
    flow = next(iter(clean_monitor.delivered))
    clean_monitor.delivered[flow][0] -= 1
    with pytest.raises(InvariantViolation, match="sent"):
        clean_monitor.assert_message_conservation()


def test_checker_detects_lost_bytes(clean_monitor):
    flow = next(iter(clean_monitor.delivered))
    clean_monitor.delivered[flow][1] -= 1
    with pytest.raises(InvariantViolation, match="B"):
        clean_monitor.assert_message_conservation()


def test_checker_detects_unapplied_gradient(clean_monitor):
    key = next(iter(clean_monitor.pushes_delivered))
    clean_monitor.pushes_delivered[key] += 1
    with pytest.raises(InvariantViolation, match="exactly|update jobs"):
        clean_monitor.assert_updates_exactly_once()


def test_checker_detects_undrained_channel(clean_monitor):
    ch = clean_monitor.cluster.tx_channels[0]
    clean_monitor.channel_completed[(ch.machine, ch.direction)] -= 64
    with pytest.raises(InvariantViolation, match="completed"):
        clean_monitor.assert_channels_drained()


def test_forward_gating_violation_detected(tiny_model):
    """A buggy gate that opens before the round's parameters actually
    arrived must trip the monitor's independent delivery ledger."""
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=0.2, seed=0)
    cluster = ClusterSim(tiny_model, p3(), cfg)
    InvariantMonitor(cluster)

    def force_gate_open():
        worker = cluster.workers[0]
        if worker.waiting_forward and not worker.done:
            # Fake the worker's own bookkeeping into believing the
            # round completed; the monitor counts real deliveries.
            worker.params_arrived[:] = worker.keys_per_layer
            worker._try_forward_layer()
        elif not worker.done:
            cluster.sim.schedule(1e-4, force_gate_open)

    cluster.sim.schedule(1e-4, force_gate_open)
    with pytest.raises(InvariantViolation, match="forward"):
        cluster.run(iterations=3, warmup=1)


def test_monitor_is_pure_observation(tiny_model):
    """Attaching the monitor must not change simulated behaviour."""
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=1.0, seed=0)
    plain = ClusterSim(tiny_model, p3(), cfg).run(iterations=4, warmup=1)
    watched_cluster = ClusterSim(tiny_model, p3(), cfg)
    InvariantMonitor(watched_cluster)
    watched = watched_cluster.run(iterations=4, warmup=1)
    assert watched.mean_iteration_time == plain.mean_iteration_time
    assert watched.events_processed == plain.events_processed


def test_simulate_checked_returns_result(tiny_model):
    result = simulate_checked(tiny_model, p3(),
                              ClusterConfig(n_workers=2, bandwidth_gbps=1.0),
                              iterations=3, warmup=1)
    assert result.throughput > 0
