"""Determinism: same config + seed => byte-identical runs.

The fault subsystem draws all of its randomness from generators derived
from ``(FaultPlan.seed, fault_index)``, so two simulations of the same
``ClusterConfig`` (fault plan included) must produce identical
``RunResult`` numbers *and* identical trace event sequences, while a
different seed (with any randomness in play) must diverge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import (
    ClusterConfig,
    ClusterSim,
    FaultPlan,
    LinkFault,
    RunResult,
    ServerStallFault,
    StragglerFault,
)
from repro.strategies import baseline, p3

JITTERED_PLAN = FaultPlan(
    faults=(
        StragglerFault(worker=1, factor=3.0, start=0.0, duration=0.01,
                       period=0.04, jitter=0.02),
        LinkFault(machine=0, rate_factor=0.1, start=0.005, duration=0.004,
                  period=0.03, jitter=0.015),
        ServerStallFault(server=0, start=0.002, duration=0.008, period=0.05,
                         jitter=0.01),
    ),
    seed=13,
)


def run(tiny_model, strategy, plan, plan_seed=None, cluster_seed=0) -> RunResult:
    if plan is not None and plan_seed is not None:
        plan = FaultPlan(plan.faults, seed=plan_seed)
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=0.5, fault_plan=plan,
                        seed=cluster_seed)
    cluster = ClusterSim(tiny_model, strategy, cfg, trace_utilization=True)
    return cluster.run(iterations=6, warmup=1)


def trace_tuple(result: RunResult):
    """The full transmission event sequence, as comparable tuples."""
    return [(r.machine, r.direction, r.start, r.end, r.wire_bytes)
            for r in result.utilization.records]


def iteration_tuple(result: RunResult):
    return [(r.worker, r.iteration, r.forward_start, r.backward_start,
             r.backward_end, r.end) for r in result.iterations.records]


def assert_identical(a: RunResult, b: RunResult) -> None:
    assert a.throughput == b.throughput
    assert a.mean_iteration_time == b.mean_iteration_time
    assert np.array_equal(a.iteration_times, b.iteration_times)
    assert a.events_processed == b.events_processed
    assert a.per_worker_throughput == b.per_worker_throughput
    assert iteration_tuple(a) == iteration_tuple(b)
    assert trace_tuple(a) == trace_tuple(b)


@pytest.mark.parametrize("strategy_fn", [baseline, p3])
def test_same_seed_is_bit_identical_with_faults(tiny_model, strategy_fn):
    a = run(tiny_model, strategy_fn(), JITTERED_PLAN)
    b = run(tiny_model, strategy_fn(), JITTERED_PLAN)
    assert_identical(a, b)


def test_same_seed_is_bit_identical_without_faults(tiny_model):
    a = run(tiny_model, p3(), None)
    b = run(tiny_model, p3(), None)
    assert_identical(a, b)


def test_different_plan_seeds_diverge(tiny_model):
    """Jittered fault occurrences depend on the plan seed, so two seeds
    must yield different traces."""
    a = run(tiny_model, p3(), JITTERED_PLAN, plan_seed=13)
    b = run(tiny_model, p3(), JITTERED_PLAN, plan_seed=14)
    assert trace_tuple(a) != trace_tuple(b)
    assert a.mean_iteration_time != b.mean_iteration_time


def test_plan_seed_is_part_of_config_identity(tiny_model):
    p1 = FaultPlan(JITTERED_PLAN.faults, seed=13)
    p2 = FaultPlan(JITTERED_PLAN.faults, seed=14)
    assert p1 == FaultPlan(JITTERED_PLAN.faults, seed=13)
    assert p1 != p2
    assert (ClusterConfig(fault_plan=p1) == ClusterConfig(fault_plan=p1))
    assert (ClusterConfig(fault_plan=p1) != ClusterConfig(fault_plan=p2))


def test_injector_rngs_are_insensitive_to_fault_interleaving(tiny_model):
    """Each fault owns an independent RNG stream: adding an unrelated
    deterministic fault must not change another fault's jitter draws.

    We verify via a proxy: the jittered link fault alone produces the
    same activation count whether or not a jitter-free straggler runs
    alongside it."""
    link = LinkFault(machine=0, rate_factor=0.1, start=0.005, duration=0.004,
                     period=0.03, jitter=0.015)
    extra = StragglerFault(worker=0, factor=1.5, start=0.0, duration=0.01,
                           period=0.05)

    def flap_times(faults):
        cfg = ClusterConfig(n_workers=2, bandwidth_gbps=0.5,
                            fault_plan=FaultPlan(faults, seed=21), seed=0)
        cluster = ClusterSim(tiny_model, p3(), cfg)
        times = []
        injector = cluster.fault_injector
        orig = injector._activate

        def spy(spec, rng, occurrence):
            if spec is faults[0]:
                times.append(cluster.sim.now)
            orig(spec, rng, occurrence)

        injector._activate = spy
        cluster.run(iterations=4, warmup=1)
        return times

    alone = flap_times((link,))
    paired = flap_times((link, extra))
    # The paired run lasts a (slightly) different wall-clock time, so
    # compare the common prefix of occurrence times.
    n = min(len(alone), len(paired))
    assert n > 0
    assert alone[:n] == pytest.approx(paired[:n], abs=0.0)
