"""Protocol-level tests: message flows of each pull policy, priority
ordering on the wire, and server bookkeeping invariants."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.models.base import LayerSpec, ModelSpec
from repro.sim import ClusterConfig, ClusterSim, MsgKind
from repro.strategies import baseline, p3, slicing_only, tensorflow_style


def _model(params=(20_000, 20_000, 20_000)):
    return ModelSpec(
        name="proto",
        layers=tuple(LayerSpec(f"l{i}", p, 1.0) for i, p in enumerate(params)),
        batch_size=8,
        samples_per_sec=100.0,
    )


def _record_sends(sim: ClusterSim):
    sent = []
    orig = sim.transport.send

    def spy(msg):
        sent.append((sim.sim.now, msg))
        orig(msg)

    sim.transport.send = spy
    return sent


def _run(strategy, iterations=2, n_workers=2, model=None):
    cfg = ClusterConfig(n_workers=n_workers, bandwidth_gbps=1.0, seed=0)
    sim = ClusterSim(model or _model(), strategy, cfg)
    sent = _record_sends(sim)
    sim.run(iterations=iterations, warmup=1)
    return sim, sent


def test_baseline_uses_notify_and_pull():
    sim, sent = _run(baseline())
    kinds = Counter(m.kind for _, m in sent)
    assert kinds[MsgKind.NOTIFY] > 0
    assert kinds[MsgKind.PULL_REQ] > 0
    assert kinds[MsgKind.PARAM] > 0
    # One notify per key per worker per iteration; pulls match notifies.
    assert kinds[MsgKind.NOTIFY] == kinds[MsgKind.PULL_REQ]
    assert kinds[MsgKind.PARAM] == kinds[MsgKind.PULL_REQ]


def test_p3_broadcast_removes_notify_and_pull():
    """Section 4.2: P3 removes the explicit update notification and pull
    request."""
    sim, sent = _run(p3(slice_params=10_000))
    kinds = Counter(m.kind for _, m in sent)
    assert kinds[MsgKind.NOTIFY] == 0
    assert kinds[MsgKind.PULL_REQ] == 0
    assert kinds[MsgKind.PARAM] > 0


def test_tensorflow_pulls_once_per_key_per_iteration():
    sim, sent = _run(tensorflow_style(), iterations=3)
    kinds = Counter(m.kind for _, m in sent)
    n_keys = len(sim.placed)
    assert kinds[MsgKind.NOTIFY] == 0
    # 2 workers x n_keys x 3 iterations
    assert kinds[MsgKind.PULL_REQ] == 2 * n_keys * 3


def test_push_volume_matches_model():
    sim, sent = _run(slicing_only(slice_params=10_000), iterations=2)
    pushes = [m for _, m in sent if m.kind is MsgKind.PUSH]
    per_iter_bytes = sum(m.payload_bytes for m in pushes) / 2
    model_bytes = _model().total_bytes
    # each of 2 workers pushes the full model each iteration
    assert per_iter_bytes == pytest.approx(2 * model_bytes)


def test_p3_enqueues_pushes_in_backward_order_but_sends_by_priority():
    """Gradients are produced final-layer-first; the wire order under P3
    must nevertheless favour low layer indices once queued together."""
    model = _model((60_000, 60_000, 60_000))
    sim, sent = _run(p3(slice_params=10_000), iterations=2, model=model)
    pushes = [(t, m) for t, m in sent if m.kind is MsgKind.PUSH]
    # Enqueue order: layer 2 first (backward order).
    assert pushes[0][1].priority == 2
    # But layer 0 pushes must not all trail layer 1's: once layer 0 is
    # ready it preempts queued layer-1 slices.  Compare mean wire index.
    iter2 = [m for _, m in pushes][len(pushes) // 2:]
    idx0 = [i for i, m in enumerate(iter2) if m.priority == 0]
    idx1 = [i for i, m in enumerate(iter2) if m.priority == 1]
    assert sum(idx0) / len(idx0) < sum(idx1) / len(idx1) + len(iter2) / 2


def test_server_update_counts_per_iteration():
    sim, _ = _run(baseline(), iterations=3)
    total = sum(s.updates_done for s in sim.servers)
    assert total == len(sim.placed) * 3


def test_server_busy_time_positive_and_bounded():
    sim, _ = _run(p3(slice_params=10_000), iterations=2)
    for server in sim.servers:
        assert server.update_busy_time >= 0
        assert server.update_busy_time <= sim.sim.now


def test_param_messages_scale_with_workers():
    _, sent2 = _run(slicing_only(slice_params=10_000), n_workers=2)
    _, sent4 = _run(slicing_only(slice_params=10_000), n_workers=4)
    params2 = sum(1 for _, m in sent2 if m.kind is MsgKind.PARAM)
    params4 = sum(1 for _, m in sent4 if m.kind is MsgKind.PARAM)
    assert params4 == 2 * params2


def test_workers_never_receive_foreign_params():
    """Every PARAM lands at a worker machine hosting a worker that
    participates in that key's layer (i.e. all of them) — delivery
    routing sanity."""
    sim, sent = _run(p3(slice_params=10_000))
    for _, m in sent:
        if m.kind is MsgKind.PARAM:
            assert 0 <= m.dst < sim.n_workers
