"""Unit tests for utilization and iteration tracing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import (
    IterationRecord,
    IterationTrace,
    UtilizationTrace,
    utilization_summary,
)


def test_series_single_transmission_fills_bins():
    trace = UtilizationTrace()
    # 1000 bytes over [0, 0.02) at machine 0 tx -> 500 B per 10 ms bin.
    trace(0, "tx", 0.0, 0.02, 1000)
    times, gbps = trace.series(0, "tx", bin_s=0.01, t_end=0.02)
    assert len(gbps) == 2
    expected = 500 * 8 / 0.01 / 1e9
    assert gbps == pytest.approx([expected, expected])


def test_series_partial_bin_overlap():
    trace = UtilizationTrace()
    trace(0, "tx", 0.005, 0.015, 1000)  # spans halves of two bins
    _, gbps = trace.series(0, "tx", bin_s=0.01, t_end=0.02)
    assert gbps[0] == pytest.approx(gbps[1])
    assert gbps.sum() * 0.01 / 8 * 1e9 == pytest.approx(1000)


def test_series_filters_machine_and_direction():
    trace = UtilizationTrace()
    trace(0, "tx", 0.0, 0.01, 100)
    trace(1, "tx", 0.0, 0.01, 200)
    trace(0, "rx", 0.0, 0.01, 300)
    assert trace.total_bytes(0, "tx") == 100
    assert trace.total_bytes(1, "tx") == 200
    assert trace.total_bytes(0, "rx") == 300


def test_series_zero_duration_transmission():
    trace = UtilizationTrace()
    trace(0, "tx", 0.005, 0.005, 400)
    _, gbps = trace.series(0, "tx", bin_s=0.01, t_end=0.01)
    assert gbps[0] * 0.01 / 8 * 1e9 == pytest.approx(400)


def test_idle_fraction():
    trace = UtilizationTrace()
    trace(0, "tx", 0.0, 0.01, 10**6)  # busy first bin only
    idle = trace.idle_fraction(0, "tx", 0.0, 0.05, bin_s=0.01)
    assert idle == pytest.approx(0.8)


def test_disabled_trace_records_nothing():
    trace = UtilizationTrace()
    trace.enabled = False
    trace(0, "tx", 0.0, 1.0, 100)
    assert trace.records == []


def test_peak_gbps():
    trace = UtilizationTrace()
    trace(0, "tx", 0.0, 0.01, 1250 * 1000)  # 1 Gbps for one bin
    assert trace.peak_gbps(0, "tx") == pytest.approx(1.0)


@given(st.lists(
    st.tuples(st.floats(min_value=0, max_value=0.5, allow_nan=False),
              st.floats(min_value=1e-4, max_value=0.2, allow_nan=False),
              st.integers(min_value=1, max_value=10**6)),
    min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_property_binning_conserves_bytes(transmissions):
    """Bytes summed over all bins equal bytes recorded."""
    trace = UtilizationTrace()
    t_end = 0.0
    for start, dur, nbytes in transmissions:
        trace(0, "tx", start, start + dur, nbytes)
        t_end = max(t_end, start + dur)
    _, gbps = trace.series(0, "tx", bin_s=0.01, t_end=t_end + 0.01)
    recovered = gbps.sum() * 0.01 / 8 * 1e9
    total = sum(b for _, _, b in transmissions)
    assert recovered == pytest.approx(total, rel=1e-6)


def _rec(worker=0, iteration=0, fs=0.0, bs=1.0, be=3.0, end=4.0):
    return IterationRecord(worker, iteration, fs, bs, be, end)


def test_iteration_record_derived_metrics():
    r = _rec()
    assert r.duration == pytest.approx(4.0)
    assert r.compute_time == pytest.approx(3.0)
    assert r.stall_time == pytest.approx(1.0)


def test_iteration_trace_per_worker_filtering_and_skip():
    trace = IterationTrace()
    for w in range(2):
        for i in range(4):
            trace.add(_rec(worker=w, iteration=i, fs=i * 5.0, end=i * 5.0 + 4.0))
    times = trace.iteration_times(worker=1, skip=2)
    assert len(times) == 2
    assert trace.mean_iteration_time(worker=0, skip=1) == pytest.approx(4.0)


def test_iteration_trace_empty_after_skip_raises():
    trace = IterationTrace()
    trace.add(_rec())
    with pytest.raises(ValueError):
        trace.mean_iteration_time(worker=0, skip=5)


def test_utilization_summary_keys():
    trace = UtilizationTrace()
    trace(0, "tx", 0.0, 0.01, 1000)
    trace(0, "rx", 0.0, 0.01, 1000)
    out = utilization_summary(trace, 0, 0.0, 0.05)
    assert set(out) == {
        "tx_peak_gbps", "tx_mean_gbps", "tx_idle_frac",
        "rx_peak_gbps", "rx_mean_gbps", "rx_idle_frac",
    }
