"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(5.0, seen.append, 1)
    sim.run()
    assert sim.now == 5.0 and seen == [1]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancellation_skips_event():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    sim.cancel(handle)
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_events_scheduled_during_run():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, order.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 2)
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 2]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    assert sim.pending == 7


def test_pending_counter_tracks_cancellations():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending == 5
    handles[0].cancel()
    handles[3].cancel()
    assert sim.pending == 3
    handles[3].cancel()  # idempotent: must not double-decrement
    assert sim.pending == 3
    sim.run()
    assert sim.pending == 0
    assert sim.events_processed == 3


def test_after_fires_without_handle():
    sim = Simulator()
    fired = []
    assert sim.after(1.0, fired.append, "x") is None
    sim.run()
    assert fired == ["x"] and sim.now == 1.0


def test_after_interleaves_with_schedule_in_seq_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "a")
    sim.after(1.0, order.append, "b")
    sim.schedule(1.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.peek_time() == 2.0


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as e:
            errors.append(e)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_events_processed_counts():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_execution_order_matches_sorted_times(delays):
    """Events always fire in nondecreasing time order, ties FIFO."""
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        sim.schedule(d, lambda i=i, d=d: fired.append((d, i)))
    sim.run()
    assert fired == sorted(fired, key=lambda t: (t[0], t[1]))
    assert len(fired) == len(delays)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_property_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    handles = []
    for i, (delay, cancel) in enumerate(entries):
        handles.append((sim.schedule(delay, fired.append, i), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    expected = {i for i, (_, cancel) in enumerate(entries) if not cancel}
    assert set(fired) == expected
