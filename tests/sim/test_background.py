"""Tests for background traffic and straggler injection."""

from __future__ import annotations

import pytest

from repro.sim import ClusterConfig, ClusterSim, simulate
from repro.sim.background import BackgroundTraffic
from repro.strategies import asgd, baseline, p3


def test_background_load_validation(tiny_model):
    with pytest.raises(ValueError):
        ClusterConfig(background_load=1.0)
    with pytest.raises(ValueError):
        ClusterConfig(background_load=-0.1)
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=1.0, background_load=0.3)
    sim = ClusterSim(tiny_model, baseline(), cfg)
    with pytest.raises(ValueError):
        BackgroundTraffic(sim, 0.3, 0)


def test_background_traffic_slows_training(tiny_model):
    quiet = ClusterConfig(n_workers=4, bandwidth_gbps=0.5)
    noisy = ClusterConfig(n_workers=4, bandwidth_gbps=0.5, background_load=0.5)
    fast = simulate(tiny_model, baseline(), quiet, iterations=4, warmup=1)
    slow = simulate(tiny_model, baseline(), noisy, iterations=4, warmup=1)
    assert slow.mean_iteration_time > fast.mean_iteration_time


def test_background_traffic_terminates(tiny_model):
    """Noise generation must stop once workers finish (no infinite run)."""
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=1.0, background_load=0.4)
    result = simulate(tiny_model, p3(), cfg, iterations=3, warmup=1)
    assert result.throughput > 0


def test_background_bursts_injected(tiny_model):
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=1.0, background_load=0.4,
                        background_burst_bytes=100_000)
    sim = ClusterSim(tiny_model, baseline(), cfg)
    sim.run(iterations=3, warmup=1)
    assert sim.background is not None
    assert sim.background.bursts_injected > 0


def test_zero_load_means_no_generator(tiny_model, fast_cluster):
    sim = ClusterSim(tiny_model, baseline(), fast_cluster)
    assert sim.background is None


def test_p3_advantage_grows_with_contention(tiny_model):
    def speedup(load):
        cfg = ClusterConfig(n_workers=4, bandwidth_gbps=1.0,
                            background_load=load, seed=0)
        base = simulate(tiny_model, baseline(), cfg, iterations=4, warmup=1)
        fast = simulate(tiny_model, p3(), cfg, iterations=4, warmup=1)
        return fast.throughput / base.throughput

    # P3 should not become *worse* under contention.
    assert speedup(0.5) >= speedup(0.0) * 0.95


def test_straggler_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_workers=4, straggler_factors=(1.0, 1.0))  # wrong arity
    with pytest.raises(ValueError):
        ClusterConfig(n_workers=2, straggler_factors=(1.0, 0.0))


def test_straggler_slows_synchronous_training(tiny_model):
    even = ClusterConfig(n_workers=4, bandwidth_gbps=10.0)
    skew = ClusterConfig(n_workers=4, bandwidth_gbps=10.0,
                         straggler_factors=(1.0, 1.0, 1.0, 2.0))
    fast = simulate(tiny_model, baseline(), even, iterations=4, warmup=1)
    slow = simulate(tiny_model, baseline(), skew, iterations=4, warmup=1)
    # Synchronous SGD runs at the slowest worker's pace.
    assert slow.mean_iteration_time > 1.6 * fast.mean_iteration_time


def test_asgd_tolerates_stragglers(tiny_model):
    skew = ClusterConfig(n_workers=4, bandwidth_gbps=10.0,
                         straggler_factors=(1.0, 1.0, 1.0, 2.0))
    sync = simulate(tiny_model, baseline(), skew, iterations=5, warmup=1)
    async_ = simulate(tiny_model, asgd(), skew, iterations=5, warmup=1)
    assert async_.throughput > 1.2 * sync.throughput
