"""Tests for the sensitivity scans."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import sensitivity_scan, speedup_at
from repro.sim import ClusterConfig


def test_speedup_at_positive():
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=4.0)
    s = speedup_at("resnet50", cfg, iterations=4)
    assert s > 1.0  # P3 wins at the constrained point


def test_scan_structure():
    fig = sensitivity_scan(
        "resnet50", bandwidth_gbps=4.0,
        sweeps={"latency_s": (10e-6, 500e-6),
                "overhead_bytes": (0, 512)},
        iterations=4)
    assert set(fig.labels) == {"latency_s", "overhead_bytes"}
    for s in fig.series:
        assert len(s.y) == 2
    assert "min_speedup" in fig.notes


def test_conclusion_robust_across_knobs():
    """The headline conclusion (P3 > baseline at 4 Gbps) must survive
    order-of-magnitude changes in every cost constant."""
    fig = sensitivity_scan("resnet50", bandwidth_gbps=4.0, iterations=4)
    assert fig.notes["min_speedup"] > 1.05
