"""Determinism and round-trip tests for the sweep runner and cache.

The contract under test: ``run_grid`` returns *identical* results for
any ``jobs`` value and any cache state, so figure drivers serialize to
byte-identical JSON however they were executed.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    SimCache,
    fig7_bandwidth_sweep,
    save_figure,
)
from repro.analysis import runner
from repro.analysis.cache import code_salt
from repro.analysis.runner import (
    PointResult,
    SimPoint,
    effective_jobs,
    execute_point,
    run_grid,
)
from repro.sim import ClusterConfig
from repro.sim.faults import (
    FaultPlan,
    LinkFault,
    ServerStallFault,
    StragglerFault,
)
from repro.strategies import baseline, p3

QUICK = dict(n_workers=2, bandwidth_gbps=4.0)


def _points(n=3):
    return [
        SimPoint("resnet50", strat, ClusterConfig(**QUICK), iterations=3,
                 warmup=1)
        for strat in (baseline(), p3(), p3(slice_params=10_000))
    ][:n]


# ----------------------------------------------------------------------
# Document round-trips
# ----------------------------------------------------------------------
def test_simpoint_doc_round_trip():
    point = SimPoint("vgg19", p3(), ClusterConfig(n_workers=8, seed=3),
                     iterations=4, warmup=2)
    doc = json.loads(json.dumps(point.to_doc()))
    assert SimPoint.from_doc(doc) == point


def test_simpoint_doc_round_trip_with_fault_plan():
    plan = FaultPlan((
        StragglerFault(worker=1, factor=2.0, start=0.5),
        LinkFault(machine=0, rate_factor=0.25, start=1.0, duration=0.5),
        ServerStallFault(server=0, start=2.0, duration=0.1, period=1.0),
    ), seed=7)
    cfg = ClusterConfig(n_workers=4, fault_plan=plan,
                        straggler_factors=(1.0, 1.5, 1.0, 1.0))
    point = SimPoint("resnet50", baseline(), cfg, iterations=3, warmup=1)
    doc = json.loads(json.dumps(point.to_doc()))
    assert SimPoint.from_doc(doc) == point


def test_point_result_doc_round_trip():
    result = PointResult(throughput=123.456789012345,
                         mean_iteration_time=0.1 + 0.2,
                         events_processed=98765)
    doc = json.loads(json.dumps(result.to_doc()))
    assert PointResult.from_doc(doc) == result


# ----------------------------------------------------------------------
# Job clamping
# ----------------------------------------------------------------------
def test_effective_jobs_clamps_to_cpus(monkeypatch):
    monkeypatch.setattr(runner, "available_cpus", lambda: 2)
    assert effective_jobs(8) == 2
    assert effective_jobs(1) == 1


def test_effective_jobs_clamps_to_tasks(monkeypatch):
    monkeypatch.setattr(runner, "available_cpus", lambda: 16)
    assert effective_jobs(8, n_tasks=3) == 3
    assert effective_jobs(8, n_tasks=0) == 1


def test_effective_jobs_rejects_nonpositive():
    with pytest.raises(ValueError):
        effective_jobs(0)


# ----------------------------------------------------------------------
# Determinism: serial vs pool vs cache
# ----------------------------------------------------------------------
def test_run_grid_pool_matches_serial(monkeypatch):
    """A real 4-process pool returns bit-identical results to serial."""
    points = _points()
    serial = run_grid(points, jobs=1)
    monkeypatch.setattr(runner, "available_cpus", lambda: 4)
    pooled = run_grid(points, jobs=4)
    assert pooled == serial  # dataclass equality => exact float equality


def test_run_grid_cache_hits_match_misses(tmp_path):
    points = _points()
    cache = SimCache(tmp_path / "cache")
    cold = run_grid(points, cache=cache)
    assert cache.stats() == {"hits": 0, "misses": len(points)}
    warm_cache = SimCache(tmp_path / "cache")
    warm = run_grid(points, cache=warm_cache)
    assert warm_cache.stats() == {"hits": len(points), "misses": 0}
    assert warm == cold
    assert cold == run_grid(points)  # and both match no-cache execution


def test_run_grid_partial_hits_preserve_order(tmp_path):
    cache = SimCache(tmp_path / "cache")
    points = _points(3)
    run_grid(points[:1], cache=cache)  # prime only the first point
    cache2 = SimCache(tmp_path / "cache")
    results = run_grid(points, cache=cache2)
    assert cache2.stats() == {"hits": 1, "misses": 2}
    assert results == run_grid(points)


def test_figure_bytes_identical_serial_pool_cache(tmp_path, monkeypatch):
    """The acceptance property: serialized figures match byte for byte."""
    kwargs = dict(model_name="resnet50", bandwidths=(4.0, 10.0),
                  n_workers=2, iterations=3)
    fig_serial = fig7_bandwidth_sweep(**kwargs)
    cache = SimCache(tmp_path / "cache")
    monkeypatch.setattr(runner, "available_cpus", lambda: 4)
    fig_pool = fig7_bandwidth_sweep(**kwargs, jobs=4, cache=cache)
    fig_warm = fig7_bandwidth_sweep(**kwargs, jobs=4,
                                    cache=SimCache(tmp_path / "cache"))
    blobs = [
        save_figure(fig, tmp_path / f"{name}.json").read_bytes()
        for name, fig in (("serial", fig_serial), ("pool", fig_pool),
                          ("warm", fig_warm))
    ]
    assert blobs[0] == blobs[1] == blobs[2]


# ----------------------------------------------------------------------
# Cache keying
# ----------------------------------------------------------------------
def test_cache_distinguishes_points(tmp_path):
    cache = SimCache(tmp_path / "cache")
    a, b = _points(2)
    run_grid([a], cache=cache)
    assert cache.get(b.to_doc()) is None
    assert cache.get(a.to_doc()) is not None


def test_cache_salt_invalidates(tmp_path):
    """A different code salt must never serve results from the old one."""
    point = _points(1)[0]
    doc = point.to_doc()
    cache_v1 = SimCache(tmp_path / "cache", salt="v1")
    cache_v1.put(doc, execute_point(point).to_doc())
    assert SimCache(tmp_path / "cache", salt="v1").get(doc) is not None
    assert SimCache(tmp_path / "cache", salt="v2").get(doc) is None


def test_code_salt_is_stable_and_hexlike():
    salt = code_salt()
    assert salt == code_salt()
    assert len(salt) == 64 and int(salt, 16) >= 0


def test_cache_tolerates_corrupt_entry(tmp_path):
    cache = SimCache(tmp_path / "cache")
    point = _points(1)[0]
    doc = point.to_doc()
    cache.put(doc, execute_point(point).to_doc())
    cache.path_for(doc).write_text("{not json")
    fresh = SimCache(tmp_path / "cache")
    assert fresh.get(doc) is None  # corrupt entry reads as a miss
    assert fresh.stats()["misses"] == 1
