"""Smoke tests for the terminal plotter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.series import FigureData


def _fig():
    fig = FigureData("figY", "demo", "x", "y")
    x = np.linspace(1, 10, 12)
    fig.add("a", x, np.sin(x) + 2)
    fig.add("b", x, np.cos(x) + 2)
    return fig


def test_plot_renders_and_includes_legend():
    out = ascii_plot(_fig())
    assert "demo" in out
    assert "o a" in out and "x b" in out
    assert len(out.splitlines()) > 10


def test_plot_log_x():
    fig = FigureData("f", "log", "size", "tput")
    fig.add("s", [1e3, 1e4, 1e5], [1.0, 2.0, 1.5])
    out = ascii_plot(fig, logx=True)
    assert "log" in out


def test_plot_log_x_rejects_nonpositive():
    fig = FigureData("f", "log", "x", "y")
    fig.add("s", [0.0, 1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        ascii_plot(fig, logx=True)


def test_plot_empty_figure():
    fig = FigureData("f", "empty", "x", "y")
    assert "no series" in ascii_plot(fig)


def test_plot_constant_series():
    fig = FigureData("f", "const", "x", "y")
    fig.add("s", [1.0, 2.0], [5.0, 5.0])
    out = ascii_plot(fig)
    assert "const" in out
