"""Tests for FigureData JSON persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import FigureData, load_figure, save_figure


def _fig():
    fig = FigureData("figZ", "a title", "bw", "tput")
    fig.add("baseline", [1.0, 2.0], [10.0, 20.0])
    fig.add("p3", [1.0, 2.0], [15.0, 25.0])
    fig.notes["max_p3_speedup"] = 1.5
    fig.notes["comment"] = "hello"
    return fig


def test_round_trip(tmp_path):
    path = save_figure(_fig(), tmp_path / "sub" / "fig.json")
    loaded = load_figure(path)
    orig = _fig()
    assert loaded.figure_id == orig.figure_id
    assert loaded.title == orig.title
    assert loaded.x_label == orig.x_label
    assert loaded.notes == orig.notes
    assert loaded.labels == orig.labels
    for a, b in zip(loaded.series, orig.series):
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)


def test_loaded_figure_is_functional(tmp_path):
    path = save_figure(_fig(), tmp_path / "fig.json")
    loaded = load_figure(path)
    assert loaded.get("p3").y_at(2.0) == 25.0
    assert "baseline" in loaded.table()


def test_version_check(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format_version": 99}))
    with pytest.raises(ValueError):
        load_figure(path)


def test_json_is_human_readable(tmp_path):
    path = save_figure(_fig(), tmp_path / "fig.json")
    doc = json.loads(path.read_text())
    assert doc["series"][0]["label"] == "baseline"
