"""Tests for multi-seed statistics and tail analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import SeedStats, speedup_stats, summarize, throughput_stats
from repro.analysis.tails import iteration_time_percentiles, tail_comparison
from repro.strategies import baseline


def test_summarize_basic():
    s = summarize([10.0, 12.0, 14.0])
    assert s.mean == pytest.approx(12.0)
    assert s.std == pytest.approx(2.0)
    assert s.n == 3
    assert s.lo < s.mean < s.hi


def test_summarize_single_value():
    s = summarize([5.0])
    assert s.mean == 5.0 and s.std == 0.0 and s.ci95_half_width == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_throughput_stats_deterministic_model_has_zero_std():
    """ResNet-50 has no jitter; only placement randomness (none for P3's
    round-robin) — seeds must agree for deterministic strategies."""
    from repro.strategies import p3
    s = throughput_stats("resnet50", p3(), 4.0, seeds=(0, 1, 2), iterations=4)
    assert s.std == pytest.approx(0.0, abs=1e-6)


def test_throughput_stats_jittery_model_varies():
    s = throughput_stats("sockeye", baseline(), 4.0, seeds=(0, 1, 2),
                         iterations=4)
    assert s.std > 0.0


def test_speedup_stats():
    s = speedup_stats("resnet50", 4.0, seeds=(0, 1), iterations=4)
    assert s.mean > 1.1  # P3 wins at the constrained point, across seeds


def test_iteration_percentiles_ordered():
    pct = iteration_time_percentiles("sockeye", baseline(), 4.0,
                                     iterations=12, warmup=2)
    assert pct[50.0] <= pct[90.0] <= pct[99.0]


def test_tail_comparison_structure():
    fig = tail_comparison("sockeye", iterations=12)
    assert set(fig.labels) == {"baseline", "p3", "asgd"}
    # ASGD removes the barrier: its p99/p50 ratio is no worse than the
    # synchronous baseline's.
    assert fig.notes["asgd_p99_over_p50"] <= fig.notes["baseline_p99_over_p50"] * 1.2
