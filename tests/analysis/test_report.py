"""Tests for the report generator (drivers stubbed for speed)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.analysis.report as report_mod
from repro.analysis.report import generate_report, main
from repro.analysis.schedules import ScheduleOutcome
from repro.analysis.series import FigureData


def _fake_schedule(strats):
    return {name: ScheduleOutcome(name, 10.0, 6.0, 4.0 - i)
            for i, name in enumerate(strats)}


def _fig(figure_id, notes):
    fig = FigureData(figure_id, "t", "x", "y")
    fig.add("s", [1.0], [1.0])
    fig.notes.update(notes)
    return fig


@pytest.fixture
def stubbed(monkeypatch):
    monkeypatch.setattr(report_mod, "fig4_schedule_comparison",
                        lambda: _fake_schedule(["baseline", "p3"]))
    monkeypatch.setattr(report_mod, "fig6_granularity_comparison",
                        lambda: _fake_schedule(["layer_granularity", "sliced"]))
    monkeypatch.setattr(report_mod, "fig5_param_distribution",
                        lambda: _fig("fig5", {}))
    monkeypatch.setattr(report_mod, "skew_statistics",
                        lambda name: {"n_layers": 10, "total_mparams": 1.0,
                                      "max_share": 0.5, "top_decile_share": 0.6})
    monkeypatch.setattr(report_mod, "fig7_bandwidth_sweep",
                        lambda name, iterations, jobs=1, cache=None: _fig(
                            "fig7", {"max_p3_speedup": 1.3,
                                     "max_p3_speedup_at_gbps": 4.0}))
    monkeypatch.setattr(report_mod, "burstiness_comparison",
                        lambda name: {"baseline": {"idle_frac": 0.4,
                                                   "iteration_time_s": 0.5},
                                      "p3": {"idle_frac": 0.1,
                                             "iteration_time_s": 0.4}})
    monkeypatch.setattr(report_mod, "fig10_scalability",
                        lambda name, cluster_sizes, iterations, jobs=1,
                        cache=None: _fig("fig10", {
                            "max_p3_speedup": 1.4, "max_p3_speedup_at_size": 8,
                            "scaling_efficiency_p3": 0.95}))
    monkeypatch.setattr(report_mod, "fig11_p3_vs_dgc",
                        lambda settings, epochs: _fig("fig11", {
                            "p3_final_mean": 0.93, "dgc_final_mean": 0.91,
                            "mean_accuracy_drop": 0.02}))
    monkeypatch.setattr(report_mod, "fig12_slice_size_sweep",
                        lambda name, slice_sizes, iterations, jobs=1,
                        cache=None: _fig("fig12", {
                            "best_slice_size": 50000}))
    monkeypatch.setattr(report_mod, "fig13_tensorflow_utilization",
                        lambda: _fig("fig13", {"outbound_peak_gbps": 4.0,
                                               "inbound_idle_frac": 0.3}))
    monkeypatch.setattr(report_mod, "fig14_poseidon_utilization",
                        lambda: _fig("fig14", {"outbound_peak_gbps": 1.0,
                                               "outbound_idle_frac": 0.2}))
    monkeypatch.setattr(report_mod, "fig15_asgd_vs_p3",
                        lambda epochs: _fig("fig15", {
                            "p3_final": 0.94, "asgd_final": 0.80,
                            "asgd_to_p3_time_ratio": 4.0}))


def test_generate_report_structure(stubbed):
    text = generate_report(quick=False)
    for section in ("Figure 5", "Figure 7", "Figures 8 & 9", "Figure 10",
                    "Figure 11", "Figure 12", "Figures 13 & 14", "Figure 15"):
        assert section in text
    assert "paper: ~0.4%" in text or "paper: 1.25x" in text or "(paper:" in text


def test_generate_report_quick_mode_smaller(stubbed):
    full = generate_report(quick=False)
    quick = generate_report(quick=True)
    assert len(quick) < len(full)
    assert "quick" in quick


def test_progress_callback_invoked(stubbed):
    seen = []
    generate_report(quick=True, progress=seen.append)
    assert any("fig11" in s for s in seen)


def test_main_writes_file(stubbed, tmp_path, capsys):
    out = tmp_path / "r.md"
    assert main(["--quick", "--out", str(out)]) == 0
    assert out.exists()
    assert "P3 reproduction report" in out.read_text()
