"""Correctness battery for warm-start sweep execution.

The warm-start executor's contract
(:mod:`repro.analysis.warmstart`): a point either takes a *verified*
steady-state extrapolation — matching a cold run to ``REL_TOL`` on
times and **exactly** on event counts — or it runs cold,
bit-identically to :func:`repro.analysis.runner.execute_point`.  The
tests pin both branches, the static eligibility screen, the family
grouping in ``run_grid(warm_start=True)``, the warm/exact cache
namespace split, and the code-salt coverage of the executor modules
themselves.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SimCache
from repro.analysis.cache import code_salt
from repro.analysis import cache as cache_mod
from repro.analysis.runner import SimPoint, execute_point, run_grid
from repro.analysis.warmstart import (
    REL_TOL,
    WARM_LADDER,
    WarmOutcome,
    eligible,
    execute_point_warm,
    warm_iterations,
)
from repro.models import get_model, toy_model
from repro.sim import ClusterConfig
from repro.sim.faults import FaultPlan, StragglerFault
from repro.strategies import baseline, p3

ITER = warm_iterations(1) + 8  # comfortably past the first warm rung


def _point(bw=4.0, iterations=ITER, warmup=1, **cfg):
    return SimPoint("toy3", p3(),
                    ClusterConfig(n_workers=2, bandwidth_gbps=bw, **cfg),
                    iterations=iterations, warmup=warmup)


def _close(a, b, tol=REL_TOL):
    return math.isclose(a, b, rel_tol=tol, abs_tol=0.0)


# ----------------------------------------------------------------------
# Eligibility screen
# ----------------------------------------------------------------------
def test_eligible_needs_enough_iterations():
    model = get_model("toy3")
    assert eligible(model, _point(iterations=warm_iterations(1) + 2))
    assert not eligible(model, _point(iterations=warm_iterations(1) + 1))


def test_jitter_model_is_ineligible():
    jittery = replace(toy_model(), jitter_sigma=0.05)
    point = _point()
    assert not eligible(jittery, point)
    out = execute_point_warm(point, model=jittery)
    assert out.mode == "cold" and out.exact


def test_background_load_is_ineligible():
    point = _point(background_load=0.2)
    assert not eligible(get_model("toy3"), point)


def test_fault_plan_is_ineligible():
    plan = FaultPlan((StragglerFault(worker=0, factor=2.0, start=1.0,
                                     duration=3.0),), seed=1)
    point = _point(fault_plan=plan)
    assert not eligible(get_model("toy3"), point)
    out = execute_point_warm(point)
    assert out.mode == "cold" and out.exact
    assert out.result == execute_point(point)


# ----------------------------------------------------------------------
# Warm vs cold
# ----------------------------------------------------------------------
def test_warm_extrapolation_matches_cold_run():
    point = _point()
    warm = execute_point_warm(point)
    cold = execute_point(point)
    assert warm.mode.startswith("warm-p")
    assert not warm.exact
    assert warm.result.events_processed == cold.events_processed
    assert _close(warm.result.throughput, cold.throughput)
    assert _close(warm.result.mean_iteration_time, cold.mean_iteration_time)


def test_cold_paths_are_bit_identical_to_execute_point():
    point = _point(iterations=warm_iterations(1) + 1)  # ineligible
    out = execute_point_warm(point)
    assert out.mode == "cold"
    assert out.result == execute_point(point)


@pytest.mark.perf
def test_quasi_periodic_point_falls_back_cold():
    """vgg19/p3 at 10 Gbps drifts in its steady state (a persistent
    ULP-scale slope, not settling) — verification must refuse it and
    the fallback must reproduce the cold run bitwise."""
    point = SimPoint("vgg19", p3(),
                     ClusterConfig(n_workers=2, bandwidth_gbps=10.0),
                     iterations=warm_iterations(2) + 2, warmup=2)
    out = execute_point_warm(point)
    assert out.mode in ("cold-fallback", "cold")
    assert out.exact
    assert out.result == execute_point(point)


@given(st.sampled_from([2.0, 4.0, 8.0, 16.0]),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=8, deadline=None)
def test_property_warm_close_to_cold_across_grid(bw, extra_iters):
    """Over a spread of bandwidths and iteration counts, every verified
    extrapolation stays within REL_TOL of the cold run and nails the
    event count exactly; unverified points return the cold result."""
    point = _point(bw=bw, iterations=ITER + extra_iters)
    warm = execute_point_warm(point)
    cold = execute_point(point)
    if warm.exact:
        assert warm.result == cold
    else:
        assert warm.result.events_processed == cold.events_processed
        assert _close(warm.result.throughput, cold.throughput)
        assert _close(warm.result.mean_iteration_time,
                      cold.mean_iteration_time)


def test_warm_outcome_is_deterministic():
    point = _point()
    a = execute_point_warm(point)
    b = execute_point_warm(point)
    assert a == b  # WarmOutcome is a frozen dataclass: full equality


# ----------------------------------------------------------------------
# run_grid integration: families, jobs, cache namespaces
# ----------------------------------------------------------------------
def _grid():
    return [
        _point(bw=bw, iterations=it)
        for bw in (4.0, 8.0)
        for it in (ITER, warm_iterations(1) + 1)  # warm-able + ineligible
    ]


def test_run_grid_warm_matches_jobs_and_cache_states(tmp_path):
    points = _grid()
    serial = run_grid(points, warm_start=True)
    pooled = run_grid(points, jobs=2, warm_start=True)
    assert serial == pooled
    cache = SimCache(tmp_path / "c")
    missed = run_grid(points, cache=cache, warm_start=True)
    hit = run_grid(points, cache=cache, warm_start=True)
    assert missed == serial
    assert hit == serial
    assert cache.stats()["misses"] > 0


def test_run_grid_warm_results_land_in_matching_namespace(tmp_path):
    points = [_point(), _point(iterations=warm_iterations(1) + 1)]
    cache = SimCache(tmp_path / "c")
    run_grid(points, cache=cache, warm_start=True)
    main = SimCache(tmp_path / "c")
    warm_ns = SimCache(tmp_path / "c" / "warm")
    warm_doc, cold_doc = points[0].to_doc(), points[1].to_doc()
    # Extrapolated result: warm namespace only.
    assert main.get(warm_doc) is None
    assert warm_ns.get(warm_doc) is not None
    # Exact (ineligible) result: main namespace only.
    assert main.get(cold_doc) is not None
    assert warm_ns.get(cold_doc) is None


def test_warm_grid_agrees_with_cold_grid(tmp_path):
    points = _grid()
    warm = run_grid(points, warm_start=True)
    cold = run_grid(points)
    for w, c in zip(warm, cold):
        assert w.events_processed == c.events_processed
        assert _close(w.throughput, c.throughput)


def test_exact_main_cache_entry_shadows_warm(tmp_path):
    """The main cache is consulted first, so a cold (exact) result wins
    over any previously stored extrapolation."""
    point = _point()
    cache = SimCache(tmp_path / "c")
    run_grid([point], cache=cache, warm_start=True)   # stores warm
    cold = run_grid([point], cache=SimCache(tmp_path / "c"))  # stores exact
    out = run_grid([point], cache=SimCache(tmp_path / "c"), warm_start=True)
    assert out == cold


# ----------------------------------------------------------------------
# Code-salt coverage of the executor modules
# ----------------------------------------------------------------------
def test_salt_covers_executor_modules(monkeypatch):
    """The warm executor computes cached numbers, so its source bytes
    must participate in the cache salt: dropping the module list from
    the hash must change the digest (regression guard for
    SALT_MODULES)."""
    full = code_salt()
    monkeypatch.setattr(cache_mod, "_salt_cache", None)
    monkeypatch.setattr(cache_mod, "SALT_MODULES", ())
    without_modules = code_salt()
    monkeypatch.setattr(cache_mod, "_salt_cache", None)
    assert full != without_modules


def test_salt_modules_list_names_existing_files():
    import repro
    from pathlib import Path

    root = Path(repro.__file__).parent
    assert "analysis/runner.py" in cache_mod.SALT_MODULES
    assert "analysis/warmstart.py" in cache_mod.SALT_MODULES
    for module in cache_mod.SALT_MODULES:
        assert (root / module).is_file(), module
