"""Unit tests for figure-data containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.series import FigureData, Series, speedup


def _fig():
    fig = FigureData("figX", "title", "bw", "tput")
    fig.add("baseline", [1, 2, 4], [10, 20, 30])
    fig.add("p3", [1, 2, 4], [15, 25, 33])
    return fig


def test_series_validation():
    with pytest.raises(ValueError):
        Series("s", np.array([1, 2]), np.array([1]))


def test_series_y_at_nearest():
    s = Series("s", np.array([1.0, 2.0, 4.0]), np.array([10.0, 20.0, 40.0]))
    assert s.y_at(1.9) == 20.0
    assert s.y_at(100) == 40.0


def test_figure_add_get_labels():
    fig = _fig()
    assert fig.labels == ["baseline", "p3"]
    assert fig.get("p3").y[0] == 15
    with pytest.raises(KeyError):
        fig.get("missing")


def test_csv_round_trip(tmp_path):
    fig = _fig()
    path = fig.to_csv(tmp_path / "out" / "fig.csv")
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "figure,series,bw,tput"
    assert len(lines) == 1 + 6  # header + 2 series x 3 points


def test_table_contains_all_points():
    table = _fig().table()
    assert "baseline" in table and "p3" in table
    assert "30.000" in table


def test_summary_includes_notes():
    fig = _fig()
    fig.notes["speedup"] = 1.5
    text = fig.summary()
    assert "speedup" in text and "figX" in text


def test_speedup_series():
    s = speedup(_fig(), over="baseline", of="p3")
    np.testing.assert_allclose(s.y, [1.5, 1.25, 1.1])
    assert s.label == "p3/baseline"


def test_speedup_skips_unmatched_x():
    fig = FigureData("f", "t", "x", "y")
    fig.add("baseline", [1, 2], [10, 20])
    fig.add("p3", [2, 3], [30, 30])
    s = speedup(fig, "baseline", "p3")
    np.testing.assert_allclose(s.x, [2.0])
    np.testing.assert_allclose(s.y, [1.5])
