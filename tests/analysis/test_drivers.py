"""Driver tests: each figure driver runs on scaled-down settings and
produces data with the paper's qualitative structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    HyperSetting,
    burstiness_comparison,
    colocation_ablation,
    component_ablation,
    fig4_schedule_comparison,
    fig5_param_distribution,
    fig6_granularity_comparison,
    fig7_bandwidth_sweep,
    fig10_scalability,
    fig11_p3_vs_dgc,
    fig12_slice_size_sweep,
    fig15_asgd_vs_p3,
    latency_sensitivity,
    priority_policy_ablation,
    skew_statistics,
    utilization_trace,
)
from repro.strategies import baseline, p3


def test_fig4_priority_reduces_stall():
    out = fig4_schedule_comparison()
    assert out["p3"].stall_time < 0.6 * out["baseline"].stall_time
    assert out["p3"].compute_time == pytest.approx(6.0)


def test_fig5_structure():
    fig = fig5_param_distribution()
    assert set(fig.labels) == {"resnet50", "vgg19", "sockeye"}
    vgg = fig.get("vgg19")
    assert vgg.y.max() > 100  # the 102.8M fc6 array, in millions
    stats = skew_statistics("vgg19")
    assert stats["max_share"] == pytest.approx(0.715, abs=0.01)


def test_fig6_slicing_cuts_stall():
    out = fig6_granularity_comparison()
    assert out["sliced"].stall_time < 0.75 * out["layer_granularity"].stall_time


def test_fig7_sweep_tiny():
    fig = fig7_bandwidth_sweep("resnet50", bandwidths=(2.0, 8.0),
                               iterations=4, warmup=1)
    assert set(fig.labels) == {"baseline", "slicing", "p3"}
    # P3 >= baseline at the constrained point
    assert fig.get("p3").y_at(2.0) >= fig.get("baseline").y_at(2.0)
    # Both near compute bound when bandwidth is ample
    assert fig.get("p3").y_at(8.0) == pytest.approx(104.0, rel=0.05)
    assert "max_p3_speedup" in fig.notes


def test_fig7_sweep_default_grid_for_extension_models():
    """Models outside the paper's four panels fall back to a wide grid."""
    fig = fig7_bandwidth_sweep("alexnet", bandwidths=(5.0, 20.0),
                               iterations=3, warmup=1)
    # AlexNet's 89%-FC skew: slicing alone already beats baseline.
    assert fig.get("slicing").y_at(5.0) > fig.get("baseline").y_at(5.0)


def test_fig10_scalability_tiny():
    fig = fig10_scalability("resnet50", cluster_sizes=(2, 4),
                            iterations=4, warmup=1)
    base, fast = fig.get("baseline"), fig.get("p3")
    assert fast.y[1] > fast.y[0]  # throughput grows with cluster size
    assert (fast.y >= base.y * 0.999).all()


def test_fig12_interior_optimum():
    fig = fig12_slice_size_sweep("vgg19", slice_sizes=(2_000, 50_000, 1_000_000),
                                 iterations=3, warmup=1)
    y = fig.get("p3").y
    assert y[1] > y[0] and y[1] > y[2]  # peak at the interior point
    assert fig.notes["best_slice_size"] == 50_000


def test_utilization_trace_structure():
    fig = utilization_trace("resnet50", baseline(), 4.0, iterations=4,
                            warmup=1, figure_id="t")
    assert set(fig.labels) == {"outbound", "inbound"}
    assert fig.notes["outbound_peak_gbps"] <= 4.0 * 1.01
    assert fig.notes["iteration_time_s"] > 0


def test_burstiness_baseline_idles_more_than_p3():
    out = burstiness_comparison("vgg19")
    assert out["baseline"]["idle_frac"] > out["p3"]["idle_frac"]
    assert out["p3"]["iteration_time_s"] < out["baseline"]["iteration_time_s"]


def test_fig11_quick():
    fig = fig11_p3_vs_dgc(settings=(HyperSetting(0.05, 0.9, 1),),
                          epochs=3, n_train=256, n_val=128)
    assert set(fig.labels) == {"p3_min", "p3_max", "dgc_min", "dgc_max"}
    assert len(fig.get("p3_min").y) == 3
    assert "mean_accuracy_drop" in fig.notes


def test_fig15_quick():
    fig = fig15_asgd_vs_p3(epochs=3, n_train=256, n_val=128)
    assert set(fig.labels) == {"p3", "asgd"}
    # ASGD iterates faster per iteration (no barrier)
    assert fig.notes["asgd_iter_time_s"] <= fig.notes["p3_iter_time_s"] * 1.05


def test_priority_policy_ablation_quick():
    fig = priority_policy_ablation("resnet50", bandwidth_gbps=3.0,
                                   policies=("forward", "reverse"),
                                   iterations=4)
    assert fig.notes["forward"] >= fig.notes["reverse"] * 0.999


def test_component_ablation_ordering():
    out = component_ablation("vgg19", bandwidth_gbps=15.0, iterations=4)
    assert out["p3"] >= out["slicing"] * 0.98
    assert out["slicing"] > out["baseline"]


def test_latency_sensitivity_quick():
    fig = latency_sensitivity("resnet50", bandwidth_gbps=4.0,
                              latencies_us=(50, 1000), iterations=4)
    p3_series = fig.get("p3")
    # P3's gains are bandwidth-scheduling gains: mild latency sensitivity.
    assert p3_series.y[1] > 0.8 * p3_series.y[0]


def test_colocation_ablation_quick():
    out = colocation_ablation("vgg19", bandwidth_gbps=15.0, iterations=3)
    assert set(out) == {"colocated", "dedicated"}
    for mode in out.values():
        assert mode["p3"] > 0 and mode["baseline"] > 0
