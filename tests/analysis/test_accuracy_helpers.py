"""Unit tests for the accuracy-driver helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.accuracy import (
    DEFAULT_SETTINGS,
    HyperSetting,
    _time_to,
    _train_one,
)
from repro.training import make_dataset


def test_hyper_setting_label():
    s = HyperSetting(0.05, 0.9, 3)
    assert s.label == "lr=0.05,m=0.9,seed=3"


def test_default_settings_are_five_distinct():
    assert len(DEFAULT_SETTINGS) == 5
    assert len({s.label for s in DEFAULT_SETTINGS}) == 5


def test_time_to():
    acc = np.array([0.2, 0.5, 0.9])
    t = np.array([1.0, 2.0, 3.0])
    assert _time_to(acc, t, 0.5) == 2.0
    assert _time_to(acc, t, 0.95) is None
    assert _time_to(acc, t, 0.0) == 1.0


def test_train_one_produces_trajectory():
    # _train_one builds the standard small_cnn, so use the default
    # (16x16x3) dataset spec at reduced size.
    ds = make_dataset(n_train=128, n_val=64, seed=0)
    res = _train_one(ds, HyperSetting(0.05, 0.9, 1), "exact",
                     epochs=2, n_workers=2, batch_size=32, dgc_density=0.01)
    assert len(res.val_accuracy) == 2
    assert 0.0 <= res.final_accuracy <= 1.0


def test_train_one_dgc_uses_density():
    ds = make_dataset(n_train=128, n_val=64, seed=0)
    res = _train_one(ds, HyperSetting(0.05, 0.9, 1), "dgc",
                     epochs=2, n_workers=2, batch_size=32, dgc_density=0.05)
    assert res.method == "dgc"
