"""Tests for the fluid-limit bounds, including simulator validation."""

from __future__ import annotations

import pytest

from repro.analysis.bounds import (
    baseline_crossover_gbps,
    iteration_bounds,
    p3_crossover_gbps,
    wire_bytes_per_direction,
)
from repro.models import resnet50, vgg19
from repro.sim import ClusterConfig, simulate
from repro.strategies import baseline, p3


def test_wire_bytes_formula():
    model = resnet50()
    got = wire_bytes_per_direction(model, 4)
    expected = 2 * model.total_bytes * 3 / 4
    assert got == pytest.approx(expected)


def test_wire_bytes_single_worker_is_zero():
    assert wire_bytes_per_direction(resnet50(), 1) == 0.0


def test_wire_bytes_compression_scales():
    model = resnet50()
    full = wire_bytes_per_direction(model, 4)
    half = wire_bytes_per_direction(model, 4, gradient_scale=0.5, param_scale=0.5)
    assert half == pytest.approx(full / 2)


def test_validation():
    with pytest.raises(ValueError):
        wire_bytes_per_direction(resnet50(), 0)
    with pytest.raises(ValueError):
        iteration_bounds(resnet50(), 0.0)


def test_bounds_structure():
    b = iteration_bounds(resnet50(), 4.0)
    assert b.p3_bound == pytest.approx(max(b.compute, b.wire))
    assert b.baseline_bound >= b.p3_bound
    assert b.p3_throughput_bound == pytest.approx(1.0 / b.p3_bound)


def test_crossovers_match_paper_for_resnet50():
    """The paper's Figure 7(a) breakpoints, from first principles."""
    model = resnet50()
    assert baseline_crossover_gbps(model) == pytest.approx(6.0, abs=0.3)
    assert p3_crossover_gbps(model) == pytest.approx(4.0, abs=0.3)


def test_crossover_ordering():
    """Baseline always degrades at higher bandwidth than P3 (its overlap
    window — backward only — is smaller)."""
    for model in (resnet50(), vgg19()):
        assert baseline_crossover_gbps(model) > p3_crossover_gbps(model)


@pytest.mark.parametrize("bw", [2.0, 4.0, 8.0])
def test_simulator_respects_p3_lower_bound(bw):
    """The event simulator can never beat the fluid bound (it adds
    overheads and discreteness on top)."""
    model = resnet50()
    b = iteration_bounds(model, bw)
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=bw)
    result = simulate(model, p3(), cfg, iterations=4, warmup=1)
    assert result.mean_iteration_time >= b.p3_bound * 0.999


@pytest.mark.parametrize("bw", [2.0, 4.0])
def test_simulator_close_to_p3_bound(bw):
    """...and P3 should get close to the bound (within ~25%): the whole
    point of the design is approaching full overlap."""
    model = resnet50()
    b = iteration_bounds(model, bw)
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=bw)
    result = simulate(model, p3(), cfg, iterations=4, warmup=1)
    assert result.mean_iteration_time <= 1.25 * b.p3_bound


def test_baseline_bound_explains_simulated_baseline():
    """Baseline's simulated time lands at or above the backward-only
    overlap bound."""
    model = resnet50()
    b = iteration_bounds(model, 4.0)
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=4.0)
    result = simulate(model, baseline(), cfg, iterations=4, warmup=1)
    assert result.mean_iteration_time >= 0.95 * b.baseline_bound
