"""Wire-protocol robustness: codec round-trips under hypothesis, and
deterministic rejection of truncated or corrupted frames."""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live.wire import (
    HEADER_SIZE,
    MAGIC,
    MAX_FRAME_PAYLOAD,
    FrameDecoder,
    Reassembler,
    WireError,
    WireKind,
    encode_array,
    encode_frame,
    split_message,
)

kinds = st.sampled_from(list(WireKind))
idents = st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1)
keys = st.integers(min_value=0, max_value=2 ** 31 - 1)
priorities = st.integers(min_value=-(2 ** 30), max_value=2 ** 30)
payloads = st.binary(min_size=0, max_size=4096)


def decode_all(data: bytes):
    """Feed one blob through decoder + reassembler; return messages."""
    decoder = FrameDecoder()
    reassembler = Reassembler()
    decoder.feed(data)
    out = []
    for frame in decoder.frames():
        msg = reassembler.add(frame)
        if msg is not None:
            out.append(msg)
    return out


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(kind=kinds, sender=idents, key=keys, iteration=keys,
       priority=priorities, payload=payloads,
       chunk=st.integers(min_value=1, max_value=1024))
def test_chunked_roundtrip(kind, sender, key, iteration, priority, payload,
                           chunk):
    frames = split_message(kind, sender, key, iteration, priority, payload,
                           chunk_bytes=chunk)
    msgs = decode_all(b"".join(frames))
    assert len(msgs) == 1
    msg = msgs[0]
    assert (msg.kind, msg.sender, msg.key, msg.iteration, msg.priority) == \
        (kind, sender, key, iteration, priority)
    assert msg.payload == payload


@settings(max_examples=30, deadline=None)
@given(payload=payloads, cut=st.integers(min_value=0, max_value=4096),
       chunk=st.integers(min_value=1, max_value=512))
def test_byte_at_a_time_feeding(payload, cut, chunk):
    """Arbitrary TCP segmentation must never split or corrupt a message."""
    data = b"".join(split_message(WireKind.PUSH, 1, 2, 3, 4, payload, chunk))
    cut = min(cut, len(data))
    decoder = FrameDecoder()
    reassembler = Reassembler()
    msgs = []
    for part in (data[:cut], data[cut:]):
        decoder.feed(part)
        for frame in decoder.frames():
            msg = reassembler.add(frame)
            if msg is not None:
                msgs.append(msg)
    assert len(msgs) == 1 and msgs[0].payload == payload


def test_array_roundtrip():
    vec = np.linspace(-1.0, 1.0, 1234)
    frames = split_message(WireKind.PULL_RESP, 0, 7, 2, 1,
                           encode_array(vec), chunk_bytes=100)
    (msg,) = decode_all(b"".join(frames))
    np.testing.assert_array_equal(msg.array(), vec)


def test_interleaved_messages_reassemble():
    """Chunks of different messages interleave freely on one stream."""
    a = split_message(WireKind.PUSH, 0, 1, 0, 5, b"A" * 300, 100)
    b = split_message(WireKind.PUSH, 0, 2, 0, 0, b"B" * 300, 100)
    interleaved = [fr for pair in zip(a, b) for fr in pair]
    msgs = decode_all(b"".join(interleaved))
    assert {m.key: m.payload for m in msgs} == {1: b"A" * 300, 2: b"B" * 300}


# ----------------------------------------------------------------------
# Rejection of malformed input
# ----------------------------------------------------------------------
def test_truncated_frame_waits_for_more_bytes():
    data = encode_frame(WireKind.PUSH, 0, 1, 0, 0, b"x" * 100)
    decoder = FrameDecoder()
    decoder.feed(data[:-10])
    assert list(decoder.frames()) == []  # incomplete, not an error
    decoder.feed(data[-10:])
    assert len(list(decoder.frames())) == 1


@pytest.mark.parametrize("flip_at", [0, HEADER_SIZE - 2, HEADER_SIZE + 5])
def test_corrupt_byte_rejected(flip_at):
    data = bytearray(encode_frame(WireKind.PUSH, 0, 1, 0, 0, b"y" * 64))
    data[flip_at] ^= 0xFF
    decoder = FrameDecoder()
    decoder.feed(bytes(data))
    with pytest.raises(WireError):
        list(decoder.frames())


def test_bad_magic_rejected():
    decoder = FrameDecoder()
    decoder.feed(b"\x00" * HEADER_SIZE)
    with pytest.raises(WireError, match="magic"):
        list(decoder.frames())


def test_oversize_length_field_rejected():
    """A corrupt length field must not trigger a giant allocation."""
    header = struct.pack("<HBBHhiiiIIII", MAGIC, 2, int(WireKind.PUSH), 0, 0,
                         0, 0, 0, 0, MAX_FRAME_PAYLOAD * 2,
                         MAX_FRAME_PAYLOAD * 2, 0xFFFFFFFF)
    import zlib
    crc = zlib.crc32(header)
    decoder = FrameDecoder()
    decoder.feed(header + struct.pack("<I", crc))
    with pytest.raises(WireError, match="exceeds"):
        list(decoder.frames())


def test_oversize_message_refused_at_encode():
    with pytest.raises(WireError):
        encode_frame(WireKind.PUSH, 0, 0, 0, 0, b"", total=1 << 40)


def test_crc_covers_payload():
    data = bytearray(encode_frame(WireKind.PUSH, 3, 9, 1, 2, b"payload!"))
    data[HEADER_SIZE] ^= 0x01  # first payload byte
    decoder = FrameDecoder()
    decoder.feed(bytes(data))
    with pytest.raises(WireError, match="CRC"):
        list(decoder.frames())


# ----------------------------------------------------------------------
# Connection reuse
# ----------------------------------------------------------------------
def _corrupted_frame(payload: bytes = b"c" * 64) -> bytes:
    data = bytearray(encode_frame(WireKind.PUSH, 0, 1, 0, 0, payload))
    data[HEADER_SIZE] ^= 0x01  # payload bit flip: CRC fails, framing sane
    return bytes(data)


def test_reset_clears_crc_failures_between_connections():
    """Regression: a lenient decoder reused on a new connection used to
    carry the previous connection's ``crc_failures`` skip count (there
    was no way to zero it), so per-connection chaos stats compounded."""
    decoder = FrameDecoder(strict=False)
    decoder.feed(_corrupted_frame())
    assert list(decoder.frames()) == []
    assert decoder.crc_failures == 1

    decoder.reset()
    assert decoder.crc_failures == 0  # the new connection starts clean
    good = encode_frame(WireKind.PUSH, 0, 2, 0, 0, b"ok")
    decoder.feed(good)
    assert len(list(decoder.frames())) == 1
    assert decoder.crc_failures == 0


def test_reset_discards_partial_frame():
    """A partial frame from a dead connection must not desync the next
    connection's byte stream."""
    stale = encode_frame(WireKind.PUSH, 0, 1, 0, 0, b"x" * 100)
    decoder = FrameDecoder()
    decoder.feed(stale[:-10])  # connection dies mid-frame
    assert list(decoder.frames()) == []
    decoder.reset()
    assert decoder.pending_bytes == 0
    decoder.feed(encode_frame(WireKind.PUSH, 0, 2, 0, 0, b"fresh"))
    (frame,) = list(decoder.frames())
    assert frame.key == 2 and frame.payload == b"fresh"


@settings(max_examples=30, deadline=None)
@given(n_bad=st.integers(min_value=0, max_value=5),
       cut=st.integers(min_value=0, max_value=200))
def test_reset_equivalent_to_fresh_decoder(n_bad, cut):
    """After ``reset()`` a reused decoder behaves exactly like a new one,
    regardless of how much corruption or truncation it saw before."""
    used = FrameDecoder(strict=False)
    for _ in range(n_bad):
        used.feed(_corrupted_frame())
        list(used.frames())
    leftover = encode_frame(WireKind.PUSH, 0, 9, 0, 0, b"t" * 150)
    used.feed(leftover[:min(cut, len(leftover) - 1)])
    list(used.frames())
    used.reset()

    fresh = FrameDecoder(strict=False)
    stream = (_corrupted_frame(b"d" * 32)
              + encode_frame(WireKind.PULL_REQ, 1, 3, 2, 1, b"q"))
    for decoder in (used, fresh):
        decoder.feed(stream)
        frames = list(decoder.frames())
        assert [f.key for f in frames] == [3]
        assert decoder.crc_failures == 1


def test_receiver_reset_restarts_pipeline():
    """ReliableReceiver.reset() rebinds decoder, inbox and reassembler
    so sequence tracking restarts with the new connection's stream."""
    from repro.live.transport import ReliableReceiver
    receiver = ReliableReceiver()
    first = (encode_frame(WireKind.PUSH, 0, 1, 0, 0, b"a", seq=0)
             + encode_frame(WireKind.PUSH, 0, 2, 0, 0, b"b", seq=1))
    assert [m.key for m in receiver.feed(first)] == [1, 2]
    assert list(receiver.feed(_corrupted_frame())) == []
    assert receiver.crc_failures == 1

    receiver.reset()
    assert receiver.stats() == {"crc_failures": 0, "duplicate_frames": 0,
                                "gap_frames": 0}
    # The new peer's stream restarts its seq numbering from zero; without
    # the inbox reset these frames would be dropped as duplicates.
    again = (encode_frame(WireKind.PUSH, 0, 4, 1, 0, b"c", seq=0)
             + encode_frame(WireKind.PUSH, 0, 5, 1, 0, b"d", seq=1))
    msgs = list(receiver.feed(again))
    assert [m.key for m in msgs] == [4, 5]
    assert receiver.stats()["duplicate_frames"] == 0


def test_overlapping_chunks_rejected():
    frames = split_message(WireKind.PUSH, 0, 1, 0, 0, b"z" * 200, 100)
    decoder = FrameDecoder()
    reassembler = Reassembler()
    decoder.feed(frames[0] + frames[0] + frames[1])
    decoded = list(decoder.frames())
    reassembler.add(decoded[0])
    with pytest.raises(WireError, match="overlap"):
        for frame in decoded[1:]:
            reassembler.add(frame)
