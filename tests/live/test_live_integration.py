"""End-to-end live cluster tests: real processes, real sockets.

Marked ``slow``: each test forks worker + shard processes and moves real
gradient bytes over shaped localhost TCP.  These are the acceptance
tests of the PR's tentpole claims — bit-identical values and
sign-consistent timing — so they run in tier-1 (``make test`` /
``pytest``) but are excluded from ``make test-fast``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import calibrate, run_inprocess
from repro.live import LiveClusterConfig, run_live

pytestmark = pytest.mark.slow


def tiny_cfg(**overrides) -> LiveClusterConfig:
    """2 workers + 2 shards, ~7k-param MLP, 1 MB/s shaped link."""
    defaults = dict(
        n_workers=2, n_servers=2, iterations=3, warmup=1,
        in_size=8, hidden=16, depth=1, n_train=32, n_val=16, batch_size=8,
        slice_params=1_500, rate_bytes_per_s=1_000_000.0, chunk_bytes=4_096,
        fwd_layer_s=0.004, bwd_layer_s=0.008, heartbeat_interval_s=0.05,
    )
    defaults.update(overrides)
    return LiveClusterConfig(**defaults)


@pytest.mark.parametrize("strategy", ["baseline", "p3"])
def test_live_matches_inprocess_bit_for_bit(strategy):
    """The tentpole claim: real sockets change nothing about the values."""
    cfg = tiny_cfg(strategy=strategy)
    live = run_live(cfg)
    ref = run_inprocess(cfg)
    assert set(live.final_params) == set(ref)
    for name in ref:
        np.testing.assert_array_equal(
            live.final_params[name], ref[name],
            err_msg=f"{strategy}: {name} diverged from the in-process store")


def test_live_run_reports_iteration_times_and_timeline():
    cfg = tiny_cfg(strategy="p3")
    result = run_live(cfg)
    for wid in range(cfg.n_workers):
        times = result.iteration_times[wid]
        assert len(times) == cfg.iterations
        assert (times > 0).all()
        assert result.timelines[wid], "every worker must record tx chunks"
    assert result.mean_iteration_time > 0
    assert result.throughput > 0
    # Timeline converts into the simulator's trace schema.
    trace = result.utilization(worker=0)
    assert trace.total_bytes(0, "tx") > 0
    assert result.goodput_bytes_per_s(0) > 0


def test_live_heartbeats_flow():
    """Liveness traffic crosses the cluster even while gradients move."""
    cfg = tiny_cfg(strategy="p3", iterations=4, heartbeat_interval_s=0.02)
    result = run_live(cfg)
    assert sum(result.heartbeat_acks.values()) > 0


def test_p3_sends_urgent_layers_earlier_than_baseline():
    """On the wire, P3 must front-load the forward-urgent first layer:
    the mean transmission rank of its PUSH chunks drops vs the baseline."""
    from repro.live.config import make_plan

    def mean_rank_of_first_layer(cfg, result):
        plan = make_plan(cfg, cfg.strategy)
        first_keys = {m.key for m in plan.by_name[plan.names[0]]}
        ranks = []
        for wid, records in result.timelines.items():
            data = [r for r in records if r.kind == 1]  # PUSH chunks
            for rank, rec in enumerate(data):
                if rec.key in first_keys:
                    ranks.append(rank / max(1, len(data) - 1))
        assert ranks, "no PUSH chunks recorded for the first layer"
        return float(np.mean(ranks))

    # Backlog the link so several pushes queue at once: fast backward
    # emission (1 ms/layer) against a slow shaped wire (150 kB/s).
    # Otherwise each push drains before the next is enqueued and the
    # heap degenerates to FIFO for both strategies.
    overrides = dict(hidden=64, iterations=2, warmup=0,
                     fwd_layer_s=0.001, bwd_layer_s=0.001,
                     rate_bytes_per_s=150_000.0, chunk_bytes=1_024)
    base_cfg = tiny_cfg(strategy="baseline", **overrides)
    p3_cfg = tiny_cfg(strategy="p3", **overrides)
    base = run_live(base_cfg)
    p3 = run_live(p3_cfg)
    # Baseline emits in generation order => layer 0 last; P3 pulls it up.
    assert mean_rank_of_first_layer(p3_cfg, p3) < \
        mean_rank_of_first_layer(base_cfg, base)


@pytest.mark.chaos
def test_live_bit_identity_survives_lossy_transport():
    """Acceptance criteria: with chaos destroying >=5% of frames on
    every connection, retransmission restores the exact byte stream and
    the final parameters still match the in-process store bit for bit."""
    from repro.sim.faults import ChaosFault, FaultPlan

    plan = FaultPlan((ChaosFault(machine=-1, drop_rate=0.08, dup_rate=0.03,
                                 corrupt_rate=0.03),), seed=2)
    cfg = tiny_cfg(strategy="p3", fault_plan=plan)
    live = run_live(cfg)
    ref = run_inprocess(cfg)
    assert set(live.final_params) == set(ref)
    for name in ref:
        np.testing.assert_array_equal(
            live.final_params[name], ref[name],
            err_msg=f"{name} diverged under a lossy transport")
    totals = {}
    for stats in live.transport_stats.values():
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    assert totals["frames_dropped"] > 0, "chaos never bit — test is vacuous"
    assert totals["frames_dropped"] >= 0.05 * totals["frames_seen"] * 0.5, \
        "drop rate fell far below the configured 8%"
    assert totals["frames_retransmitted"] > 0, "recovery never ran"
    assert totals["acks_received"] > 0
    # Two-generals tail: the ack for a connection's final BYE can be
    # destroyed after the server already tore down, so each connection
    # may end with at most that one frame unacked.  Anything more means
    # data frames went unacknowledged.
    assert totals["unacked_frames"] <= cfg.n_workers * cfg.n_servers, \
        "data frames (not just tail BYEs) finished unacked"


@pytest.mark.chaos
def test_dead_shard_fails_fast_with_exit_code(monkeypatch):
    """A shard that dies before accepting connections must surface as a
    prompt LiveRunError naming the child and its exit code — never a
    hang waiting on the port queue."""
    import os
    import time

    import repro.live.driver as driver_mod

    if driver_mod._context().get_start_method() != "fork":
        pytest.skip("monkeypatched child entry point needs fork")

    def crash_shard(shard_id, cfg, strategy, port_queue, events_queue=None,
                    epoch=None):
        os._exit(17)

    monkeypatch.setattr(driver_mod, "serve_shard", crash_shard)
    cfg = tiny_cfg(strategy="p3")
    start = time.monotonic()
    with pytest.raises(driver_mod.LiveRunError) as err:
        run_live(cfg, launch_timeout_s=10.0)
    elapsed = time.monotonic() - start
    assert elapsed < 8.0, f"fail-fast took {elapsed:.1f}s — that is a hang"
    message = str(err.value)
    assert "live-shard" in message and "exit code 17" in message


def test_calibration_report_end_to_end():
    """Acceptance criteria: bit-identity plus sign agreement with the
    simulator's prediction, within the documented tolerance."""
    cfg = tiny_cfg(iterations=4)
    report = calibrate(cfg)
    assert report.bit_identical
    assert report.max_abs_diff == 0.0
    assert report.sim_speedup > 1.0, \
        "at 1 MB/s the simulator must predict a P3 win for this workload"
    assert report.agrees(tolerance=0.5), (
        f"live speedup {report.live_speedup:.2f}x disagrees in sign with "
        f"sim {report.sim_speedup:.2f}x beyond tolerance")
    summary = report.summary()
    assert "bit-identical" in summary and "YES" in summary
