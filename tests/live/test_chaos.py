"""Chaos channel + reliable transport: recovery restores the clean stream.

The satellite property this file locks down: for ANY seeded
drop/duplicate/corrupt plan, the Go-Back-N machinery (sequence numbers,
cumulative CHUNK_ACKs, retransmission) recovers the exact message
stream a clean channel would have delivered — same messages, same
order, same bytes.  The pure bookkeeping classes are tested without
sockets or threads so hypothesis can drive thousands of cases; one
socketpair test exercises the full threaded sender/reader pipeline.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live.chaos import ChaosChannel, chaos_specs_for, maybe_wrap
from repro.live.transport import (
    PrioritySender,
    ReliableInbox,
    ReliableOutbox,
    ReliableReceiver,
    RetryPolicy,
    TransportError,
)
from repro.live.wire import (
    HEADER_SIZE,
    MAGIC,
    FrameDecoder,
    WireKind,
    encode_frame,
)
from repro.sim.faults import ChaosFault, FaultPlan

pytestmark = pytest.mark.chaos


def chaos_plan(drop=0.0, dup=0.0, corrupt=0.0, delay_rate=0.0,
               delay_s=0.0, machine=-1, seed=0) -> FaultPlan:
    return FaultPlan((ChaosFault(machine=machine, drop_rate=drop,
                                 dup_rate=dup, corrupt_rate=corrupt,
                                 delay_rate=delay_rate, delay_s=delay_s),),
                     seed=seed)


class CaptureSock:
    """A sendall sink recording exactly what hit the 'wire'."""

    def __init__(self) -> None:
        self.buf = bytearray()

    def sendall(self, data: bytes) -> None:
        self.buf.extend(data)

    def drain(self) -> bytes:
        out = bytes(self.buf)
        self.buf.clear()
        return out


def make_channel(plan: FaultPlan, machine: int = 0) -> ChaosChannel:
    """A chaos channel whose fault window is always active (fake clock)."""
    sink = CaptureSock()
    chan = ChaosChannel(sink, plan, machine=machine, peer=1, epoch=0.0,
                        clock=lambda: 1.0)
    return chan


# ----------------------------------------------------------------------
# Bookkeeping units
# ----------------------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(ack_timeout_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(max_backoff_s=0.01, ack_timeout_s=0.25)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-0.1)


def test_retry_policy_backoff_grows_and_caps():
    import random
    policy = RetryPolicy(ack_timeout_s=0.1, backoff=2.0, max_backoff_s=0.5,
                         jitter=0.0)
    rng = random.Random(0)
    delays = [policy.deadline_after(k, rng) for k in range(6)]
    assert delays[0] == pytest.approx(0.1)
    assert delays[1] == pytest.approx(0.2)
    assert delays == sorted(delays)
    assert max(delays) == pytest.approx(0.5)  # capped


def test_outbox_cumulative_ack_and_retransmit():
    policy = RetryPolicy(ack_timeout_s=0.1, jitter=0.0, max_retries=3)
    outbox = ReliableOutbox(policy)
    for seq in range(3):
        outbox.record(seq, b"frame%d" % seq, now=0.0)
    assert len(outbox) == 3
    assert outbox.due(0.05) == []            # timer not due yet
    due = outbox.due(0.2)                    # due: all unacked, in order
    assert [s for s, _ in due] == [0, 1, 2]
    assert outbox.retransmits == 3
    assert outbox.ack(1) == 2                # cumulative: drops 0 and 1
    assert len(outbox) == 1
    assert outbox.retries == 0               # progress resets backoff


def test_outbox_gives_up_after_max_retries():
    policy = RetryPolicy(ack_timeout_s=0.01, jitter=0.0, max_retries=2)
    outbox = ReliableOutbox(policy)
    outbox.record(0, b"x", now=0.0)
    now = 0.0
    with pytest.raises(TransportError, match="seq=0"):
        for _ in range(10):
            now = outbox.next_deadline(now) + 0.001
            outbox.due(now)


def test_inbox_classifies_deliver_duplicate_gap():
    inbox = ReliableInbox()
    assert inbox.cumulative_ack == -1
    assert inbox.accept(0) == "deliver"
    assert inbox.accept(0) == "duplicate"
    assert inbox.accept(2) == "gap"          # 1 was lost: discard 2
    assert inbox.accept(1) == "deliver"
    assert inbox.accept(2) == "deliver"      # retransmission arrives
    assert inbox.cumulative_ack == 2
    assert inbox.duplicates == 1 and inbox.gaps == 1


def test_lenient_decoder_skips_crc_failures():
    good = encode_frame(WireKind.PUSH, 0, 1, 0, 0, b"abcd", seq=0)
    bad = bytearray(encode_frame(WireKind.PUSH, 0, 2, 0, 0, b"efgh", seq=1))
    bad[HEADER_SIZE] ^= 0xFF                 # corrupt a payload byte
    tail = encode_frame(WireKind.PUSH, 0, 3, 0, 0, b"ijkl", seq=2)
    decoder = FrameDecoder(strict=False)
    decoder.feed(good + bytes(bad) + tail)
    keys = [f.key for f in decoder.frames()]
    assert keys == [1, 3]
    assert decoder.crc_failures == 1


# ----------------------------------------------------------------------
# ChaosChannel semantics
# ----------------------------------------------------------------------
def test_chaos_targeting_by_machine():
    plan = chaos_plan(drop=0.5, machine=2)
    assert chaos_specs_for(plan, 2)
    assert not chaos_specs_for(plan, 0)
    assert maybe_wrap(object(), plan, machine=0, peer=2, epoch=0.0) is not None
    sock = object()
    assert maybe_wrap(sock, plan, machine=0, peer=2, epoch=0.0) is sock
    assert maybe_wrap(sock, None, machine=2, peer=0, epoch=0.0) is sock
    assert isinstance(maybe_wrap(sock, plan, machine=2, peer=0, epoch=0.0),
                      ChaosChannel)


def test_chaos_is_deterministic_given_seed():
    frames = [encode_frame(WireKind.PUSH, 0, k, 0, 0, b"x" * 64, seq=k)
              for k in range(200)]

    def run(seed):
        chan = make_channel(chaos_plan(drop=0.2, dup=0.1, corrupt=0.1,
                                       seed=seed))
        for f in frames:
            chan.sendall(f)
        return chan._sock.drain(), tuple(sorted(chan.stats().items()))

    wire_a, stats_a = run(seed=7)
    wire_b, stats_b = run(seed=7)
    wire_c, stats_c = run(seed=8)
    assert wire_a == wire_b and stats_a == stats_b
    assert wire_a != wire_c


def test_chaos_outside_window_is_passthrough():
    plan = FaultPlan((ChaosFault(machine=-1, drop_rate=0.9,
                                 start=100.0, duration=1.0),), seed=0)
    sink = CaptureSock()
    chan = ChaosChannel(sink, plan, machine=0, peer=1, epoch=0.0,
                        clock=lambda: 1.0)  # t=1s, window opens at t=100s
    frame = encode_frame(WireKind.PUSH, 0, 1, 0, 0, b"hello", seq=0)
    for _ in range(50):
        chan.sendall(frame)
    assert sink.drain() == frame * 50
    assert chan.dropped == 0


def test_chaos_corruption_keeps_framing_parseable():
    """Corruption must hit payload/crc bytes only: the lenient decoder
    skips every mangled frame and never desynchronizes."""
    chan = make_channel(chaos_plan(corrupt=0.99, seed=3))
    frames = [encode_frame(WireKind.PUSH, 0, k, 0, 0, b"y" * 32, seq=k)
              for k in range(100)]
    for f in frames:
        chan.sendall(f)
    assert chan.corrupted > 50
    decoder = FrameDecoder(strict=False)
    decoder.feed(chan._sock.drain())
    survivors = list(decoder.frames())       # must not raise WireError
    assert decoder.crc_failures == chan.corrupted
    assert len(survivors) == len(frames) - chan.corrupted
    # Control frames have no payload: corruption flips CRC bytes instead.
    chan2 = make_channel(chaos_plan(corrupt=0.99, seed=4))
    bye = encode_frame(WireKind.BYE, 0, 0, 0, 0, seq=0)
    for _ in range(50):
        chan2.sendall(bye)
    decoder2 = FrameDecoder(strict=False)
    decoder2.feed(chan2._sock.drain())
    list(decoder2.frames())                  # must not raise
    assert decoder2.crc_failures == chan2.corrupted > 0


def test_chaos_delay_sleeps_but_delivers():
    chan = make_channel(chaos_plan(delay_rate=0.5, delay_s=0.001, seed=0))
    frame = encode_frame(WireKind.PUSH, 0, 1, 0, 0, b"z" * 16, seq=0)
    for _ in range(40):
        chan.sendall(frame)
    assert chan.delayed > 0
    assert chan._sock.drain() == frame * 40  # delayed, never lost


# ----------------------------------------------------------------------
# The recovery property (satellite #1)
# ----------------------------------------------------------------------
def recovered_messages(payloads, plan, max_rounds=200):
    """Drive Go-Back-N over a chaos channel until everything is acked.

    Sockets and threads stripped away: each round retransmits every
    unacked frame through the chaos channel, then the receiver decodes,
    dedups, reassembles, and acks cumulatively — exactly the protocol
    PrioritySender/ReliableReceiver run, in deterministic miniature.
    """
    frames = {seq: encode_frame(WireKind.PUSH, 0, seq, 0, 0, payload,
                                seq=seq)
              for seq, payload in enumerate(payloads)}
    chan = make_channel(plan)
    decoder = FrameDecoder(strict=False)
    inbox = ReliableInbox()
    out = []
    pending = dict(frames)
    rounds = 0
    while pending:
        rounds += 1
        assert rounds <= max_rounds, "recovery failed to converge"
        for seq in sorted(pending):
            chan.sendall(pending[seq])
        decoder.feed(chan._sock.drain())
        for frame in decoder.frames():
            if inbox.accept(frame.seq) == "deliver":
                out.append((frame.key, frame.payload))
        for seq in list(pending):
            if seq <= inbox.cumulative_ack:
                del pending[seq]
    return out


@settings(max_examples=30, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                      max_size=12),
    drop=st.floats(min_value=0.0, max_value=0.5),
    dup=st.floats(min_value=0.0, max_value=0.5),
    corrupt=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_recovered_stream_equals_clean_stream(payloads, drop, dup, corrupt,
                                              seed):
    """THE property: any seeded lossy plan, same recovered stream."""
    if drop == dup == corrupt == 0.0:
        drop = 0.1
    plan = chaos_plan(drop=drop, dup=dup, corrupt=corrupt, seed=seed)
    got = recovered_messages(payloads, plan)
    assert got == [(i, p) for i, p in enumerate(payloads)]


# ----------------------------------------------------------------------
# Full threaded pipeline over a real socketpair
# ----------------------------------------------------------------------
def test_priority_sender_recovers_over_lossy_socketpair():
    """PrioritySender + ReliableReceiver, chaos on the forward path,
    CHUNK_ACKs on the clean reverse path: every message lands intact."""
    sock_a, sock_b = socket.socketpair()
    plan = chaos_plan(drop=0.25, dup=0.1, corrupt=0.1, seed=5)
    policy = RetryPolicy(ack_timeout_s=0.05, jitter=0.1, max_retries=20,
                         seed=1)
    chaotic = ChaosChannel(sock_a, plan, machine=0, peer=1,
                           epoch=time.monotonic() - 1.0)
    sender = PrioritySender(chaotic, sender_id=0, chunk_bytes=512,
                            retry=policy)
    acker = PrioritySender(sock_b, sender_id=1)

    received = []
    done = threading.Event()

    def b_reader():
        receiver = ReliableReceiver(sender_for=lambda f: acker)
        while True:
            data = sock_b.recv(65536)
            if not data:
                return
            for msg in receiver.feed(data):
                received.append((msg.key, msg.payload))
                if len(received) == 20:
                    done.set()

    def a_reader():
        receiver = ReliableReceiver(sender_for=lambda f: sender)
        while True:
            try:
                data = sock_a.recv(65536)
            except OSError:
                return
            if not data:
                return
            for _ in receiver.feed(data):
                pass

    threading.Thread(target=b_reader, daemon=True).start()
    threading.Thread(target=a_reader, daemon=True).start()

    rng = np.random.default_rng(0)
    expect = []
    for k in range(20):
        payload = rng.integers(0, 256, size=int(rng.integers(1, 2000)),
                               dtype=np.uint8).tobytes()
        expect.append((k, payload))
        sender.send(WireKind.PUSH, k, 0, k, payload)
    sender.flush(timeout=30.0)
    assert done.wait(10.0), f"only {len(received)}/20 messages recovered"
    assert sorted(received) == expect
    assert chaotic.dropped > 0, "chaos must actually have bitten"
    stats = sender.stats()
    assert stats["frames_retransmitted"] > 0
    assert stats["unacked_frames"] == 0
    sender.close()
    acker.close()
    sock_a.close()
    sock_b.close()
