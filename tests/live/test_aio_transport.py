"""Asyncio transport tests (repro.live.aio.transport / .node).

Three pillars of the async substrate, each proven against the behaviour
the cluster relies on:

* **Preemption on the event loop** — an urgent message enqueued while a
  bulk transfer is mid-flight overtakes it at chunk granularity, exactly
  as on the thread stack.
* **Reconnect** — a connection torn down *mid-frame* (partial frame
  buffered in the decoder, reliable messages parked in the outbox) comes
  back via :meth:`PeerConnection.reconnect` with no inherited
  ``crc_failures``, no stale sequence state, and the parked backlog
  retransmitted exactly once (satellite: ``FrameDecoder.reset`` /
  ``ReliableReceiver.reset`` exercised through an actual reconnect, not
  unit calls).
* **Chaos parity** — the socket-less async chaos path
  (:meth:`ChaosChannel.plan_frame`) consumes the seeded draw stream
  identically to the blocking ``sendall`` path, so a fault plan
  sabotages the same frames on either substrate.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.live.chaos import ChaosChannel
from repro.live.aio.node import PeerConnection
from repro.live.aio.transport import AsyncPrioritySender
from repro.live.transport import RetryPolicy, TokenBucket
from repro.live.wire import FrameDecoder, WireKind, encode_frame
from repro.sim.faults import ChaosFault, FaultPlan

HOST = "127.0.0.1"


async def start_accept_server():
    """Listen on an ephemeral port; deliver accepted streams via a queue."""
    accepted: asyncio.Queue = asyncio.Queue()
    server = await asyncio.start_server(
        lambda r, w: accepted.put_nowait((r, w)), HOST, 0)
    port = server.sockets[0].getsockname()[1]
    return server, port, accepted


async def read_frames_until(reader, done, timeout_s=5.0):
    """Decode frames off ``reader`` until ``done(frames)`` or timeout."""
    decoder = FrameDecoder()
    frames = []
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not done(frames):
        remaining = deadline - asyncio.get_running_loop().time()
        assert remaining > 0, f"timed out with {len(frames)} frames"
        data = await asyncio.wait_for(reader.read(65536), remaining)
        assert data, "peer closed before the expected frames arrived"
        decoder.feed(data)
        frames.extend(decoder.frames())
    return frames


# ----------------------------------------------------------------------
# Async preemption
# ----------------------------------------------------------------------
@pytest.mark.asyncio
async def test_urgent_message_preempts_bulk_mid_flight():
    """A high-priority message enqueued while a shaped bulk transfer is
    in flight is written next and completes first — chunk-granular
    preemption survives the move onto the event loop."""
    server, port, accepted = await start_accept_server()
    _reader_unused, writer = None, None
    try:
        creader, cwriter = await asyncio.open_connection(HOST, port)
        sreader, swriter = await accepted.get()
        writer = swriter
        # ~1 MB/s with a one-chunk burst: the 64 KB bulk message takes
        # ~60 ms, leaving a wide window to inject the urgent message.
        shaper = TokenBucket(rate_bytes_per_s=1_000_000, burst_bytes=4096)
        sender = AsyncPrioritySender(cwriter, sender_id=0, shaper=shaper,
                                     chunk_bytes=4096)
        sender.send(WireKind.PUSH, key=1, iteration=0, priority=9,
                    payload=b"b" * 65536)
        await asyncio.sleep(0.02)  # let several bulk chunks go out
        sender.send(WireKind.PUSH, key=2, iteration=0, priority=0,
                    payload=b"u" * 2048)
        await sender.flush(10.0)

        def both_complete(frames):
            done = {f.key for f in frames if f.is_final_chunk}
            return {1, 2} <= done

        frames = await read_frames_until(sreader, both_complete)
        completions = [f.key for f in frames if f.is_final_chunk]
        assert completions == [2, 1], "urgent message must finish first"
        urgent_at = next(i for i, f in enumerate(frames) if f.key == 2)
        assert urgent_at > 0, "bulk transfer should already be in flight"
        assert any(f.key == 1 for f in frames[urgent_at:]), \
            "bulk must resume after the urgent message"
        await sender.close(5.0)
    finally:
        if writer is not None:
            writer.close()
        server.close()
        await server.wait_closed()


# ----------------------------------------------------------------------
# Reconnect: decoder/inbox reset + backlog retransmission
# ----------------------------------------------------------------------
def _retry():
    return RetryPolicy(ack_timeout_s=0.05, backoff=1.5, max_backoff_s=0.2,
                       max_retries=100, jitter=0.0)


class ServerSide:
    """Accept loop: every client connection becomes a PeerConnection
    with its own reliable sender; messages land in ``inbox`` tagged with
    the accept ordinal."""

    def __init__(self):
        self.conns = asyncio.Queue()
        self.all_conns = []
        self.inbox = []

    def accept(self, reader, writer):
        idx = len(self.all_conns)
        conn = PeerConnection(
            f"client@{idx}", reader, writer,
            on_message=lambda _c, m, i=idx: self.inbox.append((i, m)))
        conn.sender = AsyncPrioritySender(writer, sender_id=99,
                                          retry=_retry())
        self.all_conns.append(conn)
        self.conns.put_nowait(conn)


async def _wait_until(pred, what, timeout_s=5.0):
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not pred():
        assert asyncio.get_running_loop().time() < deadline, \
            f"timed out waiting for {what}"
        await asyncio.sleep(0.005)


@pytest.mark.asyncio
async def test_reconnect_resets_stream_state_and_preserves_backlog():
    """Tear a connection down mid-frame and reconnect: the fresh stream
    inherits no CRC failures, no partial frame, no stale seq state, and
    the reliable message parked during the outage arrives exactly once."""
    side = ServerSide()
    server = await asyncio.start_server(side.accept, HOST, 0)
    port = server.sockets[0].getsockname()[1]
    try:
        creader, cwriter = await asyncio.open_connection(HOST, port)
        csender = AsyncPrioritySender(cwriter, sender_id=7, retry=_retry())
        client_msgs = []
        eof = asyncio.Event()
        conn = PeerConnection("server", creader, cwriter,
                              on_message=lambda _c, m: client_msgs.append(m),
                              sender=csender,
                              on_eof=lambda _c: eof.set())

        # Phase 1: reliable traffic both ways on the first connection.
        sconn0 = await asyncio.wait_for(side.conns.get(), 5.0)
        csender.send(WireKind.PUSH, key=1, iteration=0, priority=1,
                     payload=b"p1" * 100)
        await csender.flush(5.0)
        sconn0.sender.send(WireKind.PULL_RESP, key=6, iteration=0,
                           priority=1, payload=b"r6" * 100)
        await sconn0.sender.flush(5.0)
        await _wait_until(lambda: any(m.key == 6 for m in client_msgs),
                          "first PULL_RESP")

        # Kill the connection MID-FRAME: write a prefix of a valid frame
        # (header + part of the payload), then close.  The client's
        # decoder is left holding a partial frame whose continuation
        # will never arrive.
        partial = encode_frame(WireKind.PULL_RESP, 99, 5, 0, 0,
                               payload=b"z" * 64)
        sconn0.writer.write(partial[:70])
        await sconn0.writer.drain()
        sconn0.abort()
        await asyncio.wait_for(eof.wait(), 5.0)
        assert conn.receiver.decoder.pending_bytes > 0, \
            "test must actually leave a partial frame buffered"

        # Enqueue a reliable message while disconnected: it must park in
        # the outbox, not vanish.
        csender.send(WireKind.PUSH, key=2, iteration=1, priority=1,
                     payload=b"p2" * 100)

        # Reconnect — fresh accept on the server side.
        await conn.reconnect(HOST, port, timeout_s=5.0)
        sconn1 = await asyncio.wait_for(side.conns.get(), 5.0)
        await csender.flush(5.0)  # parked PUSH retransmitted + acked

        # Fresh server->client traffic starts at seq 0 again: without
        # ReliableReceiver.reset() the client inbox would drop it as a
        # duplicate of the first connection's seq 0.
        sconn1.sender.send(WireKind.PULL_RESP, key=7, iteration=1,
                           priority=1, payload=b"r7" * 100)
        await sconn1.sender.flush(5.0)
        await _wait_until(lambda: any(m.key == 7 for m in client_msgs),
                          "post-reconnect PULL_RESP")

        pushes = [(i, m.key) for i, m in side.inbox
                  if m.kind is WireKind.PUSH]
        assert pushes == [(0, 1), (1, 2)], \
            "each PUSH delivered exactly once, on the right connection"
        stats = conn.receiver.stats()
        assert stats["crc_failures"] == 0, \
            "reset must not inherit the torn connection's partial frame"
        assert stats["duplicate_frames"] == 0
        assert stats["gap_frames"] == 0
        assert [m.key for m in client_msgs
                if m.kind is WireKind.PULL_RESP] == [6, 7]

        await conn.close(5.0)
        sconn1.abort()
    finally:
        server.close()
        await server.wait_closed()


# ----------------------------------------------------------------------
# Chaos draw parity: plan_frame (async path) vs sendall (thread path)
# ----------------------------------------------------------------------
class RecordingSock:
    def __init__(self):
        self.sent = []

    def sendall(self, data):
        self.sent.append(data)


def test_chaos_plan_frame_matches_sendall_byte_for_byte():
    """Both substrates consume one decision procedure: the socket-less
    ``plan_frame`` path emits exactly the payload sequence the blocking
    ``sendall`` path writes, with identical counters."""
    plan = FaultPlan((ChaosFault(machine=-1, drop_rate=0.3, dup_rate=0.25,
                                 corrupt_rate=0.25),), seed=11)
    clock = lambda: 1.0  # noqa: E731 - inside the (always-on) window
    sock = RecordingSock()
    via_sendall = ChaosChannel(sock, plan, machine=0, peer=1, epoch=0.0,
                               clock=clock)
    via_plan = ChaosChannel(None, plan, machine=0, peer=1, epoch=0.0,
                            clock=clock)
    frames = [encode_frame(WireKind.PUSH, 0, i, 0, 0,
                           payload=bytes([i % 251]) * 32)
              for i in range(300)]
    planned = []
    for frame in frames:
        via_sendall.sendall(frame)
        delay, payloads = via_plan.plan_frame(frame)
        assert delay == 0.0  # no delay fault configured
        planned.extend(payloads)
    assert sock.sent == planned
    assert via_sendall.stats() == via_plan.stats()
    # Non-vacuity: every configured sabotage actually fired.
    stats = via_plan.stats()
    assert stats["frames_dropped"] > 0
    assert stats["frames_duplicated"] > 0
    assert stats["frames_corrupted"] > 0


# ----------------------------------------------------------------------
# Shaper accounting on the async sender (tenancy satellite)
# ----------------------------------------------------------------------
class BrokenWriter:
    """StreamWriter stand-in whose connection is already dead."""

    def __init__(self) -> None:
        self.writes = 0

    def write(self, data: bytes) -> None:
        self.writes += 1

    async def drain(self) -> None:
        raise ConnectionResetError("peer went away")


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


@pytest.mark.asyncio
async def test_broken_write_refunds_shaper_reservation():
    """Regression: a write that dies on a dead connection must refund
    its token reservation.  The frame survives in the outbox and is
    *reserved again* when retransmitted after rebind — without the
    refund, every reconnect double-debits a shared (per-tenant) bucket,
    permanently stealing bandwidth from the tenant's other senders."""
    clock = FakeClock()
    shaper = TokenBucket(1000.0, burst_bytes=10_000, clock=clock)
    sender = AsyncPrioritySender(
        BrokenWriter(), sender_id=0, shaper=shaper,
        retry=RetryPolicy(ack_timeout_s=60.0, max_backoff_s=60.0))
    frame = b"x" * 500
    assert not await sender._write(frame)
    assert sender.broken
    # The reservation came back in full: the burst is untouched.
    assert shaper.reserve(10_000) == 0.0
    sender.abort()
    await asyncio.gather(sender._task, return_exceptions=True)


@pytest.mark.asyncio
async def test_control_lane_bypasses_shaper():
    """Frames at CONTROL_PRIORITY or below never touch the bucket: a
    tenant whose bucket is deep in debt can still ack and heartbeat."""
    from repro.live.transport import CONTROL_PRIORITY

    clock = FakeClock()
    shaper = TokenBucket(1000.0, burst_bytes=100, clock=clock)
    shaper.reserve(100_000)  # bucket owes 100 seconds of debt
    server, port, accepted = await start_accept_server()
    reader, writer = await asyncio.open_connection(HOST, port)
    try:
        sender = AsyncPrioritySender(writer, sender_id=0, shaper=shaper,
                                     chunk_bytes=4096)
        sender.send(WireKind.HEARTBEAT, -1, 0, CONTROL_PRIORITY,
                    payload=b"hb")
        await asyncio.wait_for(sender.flush(), 2.0)  # no 100 s stall
        await sender.close(1.0)
    finally:
        writer.close()
        server.close()
        await server.wait_closed()
