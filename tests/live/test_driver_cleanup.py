"""Driver child-process hygiene (repro.live.driver).

A worker dying mid-round must never leave orphaned shard processes or
leaked queue feeder threads behind: ``run_live`` raises
:class:`LiveRunError` AND reaps every child it started.  The reaper
itself must be idempotent and safe on processes that were never started
— the exact states an exception mid-launch leaves behind.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import pytest

import repro.live.driver as driver_mod
from repro.live import LiveClusterConfig, run_live
from repro.live.driver import LiveRunError, _reap_children
from repro.live.membership import MembershipSchedule

pytestmark = pytest.mark.slow


def tiny_cfg(**overrides) -> LiveClusterConfig:
    defaults = dict(
        n_workers=2, n_servers=2, iterations=2, warmup=1,
        in_size=6, hidden=8, depth=1, n_train=16, n_val=8, batch_size=4,
        fwd_layer_s=0.0, bwd_layer_s=0.0,
    )
    defaults.update(overrides)
    return LiveClusterConfig(**defaults)


def _live_children():
    return [p for p in mp.active_children()
            if p.name.startswith(("live-shard", "live-worker", "live-agg"))]


def test_all_children_reaped_after_worker_death(monkeypatch):
    """The satellite regression: a worker that dies mid-round produces a
    LiveRunError — and zero surviving children, even though the shards
    it abandoned would happily wait on their sockets forever."""
    if driver_mod._context().get_start_method() != "fork":
        pytest.skip("monkeypatched child entry point needs fork")

    real_run_worker = driver_mod.run_worker

    def dying_worker(worker_id, cfg, strategy, addresses, result_queue,
                     epoch=None):
        if worker_id == 1:
            os._exit(23)  # die without reporting — mid-round crash
        real_run_worker(worker_id, cfg, strategy, addresses, result_queue,
                        epoch)

    monkeypatch.setattr(driver_mod, "run_worker", dying_worker)
    with pytest.raises(LiveRunError) as err:
        run_live(tiny_cfg(), launch_timeout_s=10.0)
    assert "exit code 23" in str(err.value)

    deadline = time.monotonic() + 5.0
    while _live_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    orphans = _live_children()
    assert not orphans, \
        f"run_live leaked children after a worker death: {orphans}"


def test_reap_children_is_idempotent_and_safe_on_unstarted_processes():
    """Every state an exception mid-launch can leave behind: never
    started, already exited, already closed — plus a second reap pass
    and queue handles (including a None placeholder)."""
    ctx = driver_mod._context()
    never_started = ctx.Process(target=time.sleep, args=(0,))
    finished = ctx.Process(target=time.sleep, args=(0,))
    finished.start()
    finished.join()
    running = ctx.Process(target=time.sleep, args=(60,))
    running.start()
    closed = ctx.Process(target=time.sleep, args=(0,))
    closed.start()
    closed.join()
    closed.close()  # .is_alive() now raises ValueError
    q = ctx.Queue()
    q.put(object())  # make sure a feeder thread exists to cancel

    procs = [never_started, finished, running, closed]
    _reap_children(procs, queues=[q, None])
    assert not running.is_alive()
    _reap_children(procs, queues=[q, None])  # idempotent


def test_run_live_rejects_elastic_membership():
    """The blocking driver's process topology is fixed at launch:
    elastic schedules must be pointed at the asyncio substrate, not
    silently mis-run."""
    cfg = tiny_cfg(membership=MembershipSchedule.static(2, iterations=2))
    with pytest.raises(LiveRunError, match="asyncio"):
        run_live(cfg)
