"""Transport tests: token-bucket shaping math (fake clock) and genuine
priority preemption on a rate-shaped loopback socket pair."""

from __future__ import annotations

import socket
import time

import pytest

from repro.live.transport import (
    CONTROL_PRIORITY,
    PrioritySender,
    TokenBucket,
    goodput_bytes_per_s,
    timeline_utilization,
)
from repro.live.wire import FrameDecoder, Reassembler, WireKind


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
def test_bucket_burst_passes_without_wait():
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=500, clock=clock)
    assert bucket.reserve(500) == 0.0


def test_bucket_debt_forces_wait():
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=500, clock=clock)
    bucket.reserve(500)                       # drain the burst
    assert bucket.reserve(1000) == pytest.approx(1.0)


def test_bucket_refills_with_time():
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=500, clock=clock)
    bucket.reserve(500)
    clock.t = 0.25                            # +250 tokens
    assert bucket.reserve(250) == 0.0
    assert bucket.reserve(100) == pytest.approx(0.1)


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=100, clock=clock)
    clock.t = 1000.0                          # a long idle period
    assert bucket.reserve(100) == 0.0
    assert bucket.reserve(100) == pytest.approx(0.1)


def test_bucket_validates_args():
    with pytest.raises(ValueError):
        TokenBucket(0.0)
    with pytest.raises(ValueError):
        TokenBucket(100.0).reserve(-1)


# ----------------------------------------------------------------------
# PrioritySender on a real (shaped) loopback link
# ----------------------------------------------------------------------
def drain(sock: socket.socket, n_messages: int, timeout: float = 30.0):
    """Read messages off a socket; return (messages, frame completion order)."""
    sock.settimeout(timeout)
    decoder = FrameDecoder()
    reassembler = Reassembler()
    messages, completions = [], []
    while len(messages) < n_messages:
        data = sock.recv(65536)
        if not data:
            break
        decoder.feed(data)
        for frame in decoder.frames():
            msg = reassembler.add(frame)
            if msg is not None:
                messages.append(msg)
                completions.append(msg.key)
    return messages, completions


def test_priority_preemption_on_shaped_link():
    """An urgent slice enqueued mid-transfer must finish before the bulk
    transfer it preempted — the live analogue of the paper's Figure 4."""
    left, right = socket.socketpair()
    try:
        bucket = TokenBucket(400_000.0, burst_bytes=4_096)
        sender = PrioritySender(left, sender_id=0, shaper=bucket,
                                chunk_bytes=2_048)
        # Bulk message: low priority (9), ~80 KiB => ~0.2 s on the wire.
        sender.send(WireKind.PUSH, key=100, iteration=0, priority=9,
                    payload=b"L" * 80_000)
        time.sleep(0.01)  # let the bulk transfer get onto the wire
        # Urgent message lands while the bulk transfer is in flight.
        sender.send(WireKind.PUSH, key=7, iteration=0, priority=0,
                    payload=b"H" * 4_000)
        messages, completions = drain(right, 2)
        assert completions == [7, 100], \
            "urgent slice must complete before the preempted bulk transfer"
        payloads = {m.key: m.payload for m in messages}
        assert payloads[7] == b"H" * 4_000
        assert payloads[100] == b"L" * 80_000
        sender.close()
    finally:
        left.close()
        right.close()


def test_fifo_when_priorities_equal():
    left, right = socket.socketpair()
    try:
        sender = PrioritySender(left, sender_id=1, chunk_bytes=1_024)
        for key in range(5):
            sender.send(WireKind.PUSH, key=key, iteration=0, priority=3,
                        payload=bytes([key]) * 2_000)
        _, completions = drain(right, 5)
        assert completions == [0, 1, 2, 3, 4]
        sender.close()
    finally:
        left.close()
        right.close()


def test_control_priority_jumps_all_queues():
    left, right = socket.socketpair()
    try:
        bucket = TokenBucket(400_000.0, burst_bytes=2_048)
        sender = PrioritySender(left, sender_id=2, shaper=bucket,
                                chunk_bytes=1_024)
        sender.send(WireKind.PUSH, key=50, iteration=0, priority=0,
                    payload=b"x" * 40_000)
        sender.send(WireKind.HEARTBEAT, key=0, iteration=1,
                    priority=CONTROL_PRIORITY)
        _, completions = drain(right, 2)
        assert completions[0] == 0, "heartbeat must not queue behind data"
        sender.close()
    finally:
        left.close()
        right.close()


def test_timeline_records_every_chunk():
    left, right = socket.socketpair()
    try:
        sender = PrioritySender(left, sender_id=0, chunk_bytes=1_000)
        sender.send(WireKind.PUSH, key=1, iteration=0, priority=0,
                    payload=b"t" * 5_500)
        drain(right, 1)
        sender.flush()
        assert len(sender.timeline) == 6  # ceil(5500 / 1000)
        starts = [r.start for r in sender.timeline]
        assert starts == sorted(starts)
        assert sum(r.nbytes for r in sender.timeline) > 5_500  # + headers
        trace = timeline_utilization(sender.timeline)
        assert trace.total_bytes(0, "tx") == sum(r.nbytes
                                                 for r in sender.timeline)
        assert goodput_bytes_per_s(sender.timeline) > 0
        sender.close()
    finally:
        left.close()
        right.close()


def test_shaped_goodput_near_configured_rate():
    """The bucket holds long-run goodput near the configured rate."""
    left, right = socket.socketpair()
    try:
        rate = 1_000_000.0
        sender = PrioritySender(left, sender_id=0,
                                shaper=TokenBucket(rate, burst_bytes=8_192),
                                chunk_bytes=4_096)
        sender.send(WireKind.PUSH, key=1, iteration=0, priority=0,
                    payload=b"g" * 200_000)
        drain(right, 1)
        sender.flush()
        measured = goodput_bytes_per_s(sender.timeline)
        assert 0.5 * rate < measured < 2.0 * rate
        sender.close()
    finally:
        left.close()
        right.close()
