"""Transport tests: token-bucket shaping math (fake clock), property
tests of the pure scheduling core (:class:`ChunkScheduler`), and genuine
priority preemption on a rate-shaped loopback socket pair."""

from __future__ import annotations

import socket
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live.transport import (
    CONTROL_PRIORITY,
    ChunkScheduler,
    PrioritySender,
    TokenBucket,
    goodput_bytes_per_s,
    timeline_utilization,
)
from repro.live.wire import FrameDecoder, Reassembler, WireKind


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
def test_bucket_burst_passes_without_wait():
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=500, clock=clock)
    assert bucket.reserve(500) == 0.0


def test_bucket_debt_forces_wait():
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=500, clock=clock)
    bucket.reserve(500)                       # drain the burst
    assert bucket.reserve(1000) == pytest.approx(1.0)


def test_bucket_refills_with_time():
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=500, clock=clock)
    bucket.reserve(500)
    clock.t = 0.25                            # +250 tokens
    assert bucket.reserve(250) == 0.0
    assert bucket.reserve(100) == pytest.approx(0.1)


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=100, clock=clock)
    clock.t = 1000.0                          # a long idle period
    assert bucket.reserve(100) == 0.0
    assert bucket.reserve(100) == pytest.approx(0.1)


def test_bucket_validates_args():
    with pytest.raises(ValueError):
        TokenBucket(0.0)
    with pytest.raises(ValueError):
        TokenBucket(100.0).reserve(-1)
    with pytest.raises(ValueError):
        TokenBucket(100.0).refund(-1)


def test_bucket_refund_restores_reserved_tokens():
    """Regression: a failed write must give its bytes back.  Before
    ``refund`` existed, a broken connection left the reservation debited
    — harmless for a private bucket (it dies with the sender) but a
    permanent ghost-byte debt on a *shared* bucket, silently shrinking
    every other sender's rate after each retransmission."""
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=500, clock=clock)
    assert bucket.reserve(400) == 0.0
    bucket.refund(400)                        # the write never happened
    assert bucket.reserve(500) == 0.0         # full burst is back
    # Retrying the same frame after a refund costs the same as the
    # first attempt — no drift across fail/refund/retry cycles.
    for _ in range(50):
        wait = bucket.reserve(500)
        bucket.refund(500)
    assert bucket.reserve(500) == pytest.approx(wait)


def test_bucket_refund_caps_at_burst():
    """Refunding more than was reserved (or refunding after a refill)
    must not mint tokens beyond the burst."""
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=100, clock=clock)
    bucket.refund(10_000)
    assert bucket.reserve(100) == 0.0
    assert bucket.reserve(100) == pytest.approx(0.1)


def test_shared_bucket_conserves_tokens_across_senders():
    """Two senders on one bucket: interleaved reserve/refund cycles by a
    flaky sender leave the healthy sender's long-run rate intact."""
    clock = FakeClock()
    bucket = TokenBucket(1000.0, burst_bytes=100, clock=clock)
    healthy = 0
    for step in range(1, 201):
        clock.t = step * 0.1                  # +100 tokens per step
        # Flaky sender reserves and always fails, refunding in full.
        bucket.reserve(60)
        bucket.refund(60)
        # Healthy sender takes whatever is immediately available
        # (float accrual can leave ~1e-17 s of residual wait).
        if bucket.reserve(100) < 1e-9:
            healthy += 100
        else:
            bucket.refund(100)
    # 20 simulated seconds at 1000 B/s: the healthy sender alone should
    # see the full rate (the flaky one never put bytes on the wire).
    assert healthy == pytest.approx(20_000, rel=0.05)


# ----------------------------------------------------------------------
# ChunkScheduler property tests (hypothesis): the sender's scheduling
# core with no sockets, threads, or clocks.
# ----------------------------------------------------------------------
#: One message spec: (priority, payload size in bytes).
message_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=300)),
    min_size=1, max_size=20)


class SchedulerModel:
    """Reference model mirrored against the real scheduler.

    Tracks, per message key, the expected next offset and collected
    chunk bytes, and computes which message *must* come out of the next
    pop: the minimal ``(priority, enqueue order)`` among those pending.
    """

    def __init__(self):
        self.pending = {}   # key -> (priority, enqueue_seq, payload, offset)
        self.collected = {}  # key -> bytearray of chunk bytes, in order
        self.done_keys = []
        self._seq = 0

    def push(self, key, priority, payload):
        self.pending[key] = (priority, self._seq, payload, 0)
        self.collected[key] = bytearray()
        self._seq += 1

    def expected_next(self):
        return min(self.pending, key=lambda k: self.pending[k][:2])

    def take_chunk(self, key, chunk, offset, done, chunk_bytes):
        priority, seq, payload, model_offset = self.pending[key]
        assert offset == model_offset, \
            f"key {key}: chunk at offset {offset}, expected {model_offset}"
        assert chunk == payload[offset:offset + chunk_bytes]
        assert len(chunk) <= chunk_bytes
        self.collected[key] += chunk
        new_offset = offset + len(chunk)
        if done:
            assert new_offset >= len(payload)
            assert bytes(self.collected[key]) == payload, \
                f"key {key}: reassembled payload differs (drop/duplicate)"
            del self.pending[key]
            self.done_keys.append(key)
        else:
            assert new_offset < len(payload)
            self.pending[key] = (priority, seq, payload, new_offset)


def drive(sched, model):
    """Drain the scheduler, checking every pop against the model."""
    while len(sched):
        expected_key = model.expected_next()
        item, chunk, offset, done, preempted = sched.pop_chunk()
        assert item.key == expected_key, (
            f"popped key {item.key}, but most urgent pending message is "
            f"{expected_key}: (priority, FIFO) order violated")
        if preempted is not None:
            assert preempted.key in model.pending, \
                "a preempted message must stay queued, never be dropped"
            assert preempted is not item
        model.take_chunk(item.key, chunk, offset, done, sched.chunk_bytes)
    assert sched.pop_chunk() is None


@given(specs=message_specs, chunk_bytes=st.sampled_from([1, 7, 64, 512]))
@settings(max_examples=150, deadline=None)
def test_scheduler_orders_by_priority_then_fifo(specs, chunk_bytes):
    """Fully drain a batch of pushes: every pop yields a chunk of the
    most urgent pending message, chunks arrive in offset order, and
    every payload is reassembled exactly once with no gaps."""
    sched = ChunkScheduler(chunk_bytes=chunk_bytes)
    model = SchedulerModel()
    for key, (priority, size) in enumerate(specs):
        payload = bytes([key % 251]) * size
        sched.push(WireKind.PUSH, key, 0, priority, payload)
        model.push(key, priority, payload)
    drive(sched, model)
    assert sorted(model.done_keys) == list(range(len(specs)))


@given(specs=message_specs,
       pops_between=st.lists(st.integers(min_value=0, max_value=4),
                             min_size=1, max_size=20),
       chunk_bytes=st.sampled_from([1, 7, 64]))
@settings(max_examples=150, deadline=None)
def test_scheduler_preemption_never_loses_chunks(specs, pops_between,
                                                 chunk_bytes):
    """Interleave pushes with pops so late urgent messages preempt
    in-flight bulk ones: no chunk is ever dropped or duplicated, and a
    preempted message always resumes from its exact offset."""
    sched = ChunkScheduler(chunk_bytes=chunk_bytes)
    model = SchedulerModel()
    for key, (priority, size) in enumerate(specs):
        payload = bytes([key % 251]) * size
        sched.push(WireKind.PUSH, key, 0, priority, payload)
        model.push(key, priority, payload)
        n_pops = pops_between[key % len(pops_between)]
        for _ in range(n_pops):
            if not len(sched):
                break
            expected_key = model.expected_next()
            item, chunk, offset, done, preempted = sched.pop_chunk()
            assert item.key == expected_key
            if preempted is not None:
                assert preempted.key in model.pending
            model.take_chunk(item.key, chunk, offset, done, chunk_bytes)
    drive(sched, model)  # drain whatever the interleaving left behind
    assert sorted(model.done_keys) == list(range(len(specs)))
    assert not model.pending


def test_scheduler_reports_preemption_of_in_flight_message():
    sched = ChunkScheduler(chunk_bytes=4)
    sched.push(WireKind.PUSH, key=1, iteration=0, priority=5,
               payload=b"bulkbulk")
    item, _, _, done, preempted = sched.pop_chunk()
    assert item.key == 1 and not done and preempted is None
    sched.push(WireKind.PUSH, key=2, iteration=0, priority=0,
               payload=b"hi")
    item, chunk, _, done, preempted = sched.pop_chunk()
    assert item.key == 2 and done and chunk == b"hi"
    assert preempted is not None and preempted.key == 1
    # The interrupted bulk message resumes from byte 4, untouched.
    item, chunk, offset, done, preempted = sched.pop_chunk()
    assert (item.key, chunk, offset, done) == (1, b"bulk", 4, True)
    assert preempted is None


def test_scheduler_validates_chunk_bytes():
    with pytest.raises(ValueError):
        ChunkScheduler(chunk_bytes=0)


# ----------------------------------------------------------------------
# PrioritySender on a real (shaped) loopback link
# ----------------------------------------------------------------------
def drain(sock: socket.socket, n_messages: int, timeout: float = 30.0):
    """Read messages off a socket; return (messages, frame completion order)."""
    sock.settimeout(timeout)
    decoder = FrameDecoder()
    reassembler = Reassembler()
    messages, completions = [], []
    while len(messages) < n_messages:
        data = sock.recv(65536)
        if not data:
            break
        decoder.feed(data)
        for frame in decoder.frames():
            msg = reassembler.add(frame)
            if msg is not None:
                messages.append(msg)
                completions.append(msg.key)
    return messages, completions


def test_priority_preemption_on_shaped_link():
    """An urgent slice enqueued mid-transfer must finish before the bulk
    transfer it preempted — the live analogue of the paper's Figure 4."""
    left, right = socket.socketpair()
    try:
        bucket = TokenBucket(400_000.0, burst_bytes=4_096)
        sender = PrioritySender(left, sender_id=0, shaper=bucket,
                                chunk_bytes=2_048)
        # Bulk message: low priority (9), ~80 KiB => ~0.2 s on the wire.
        sender.send(WireKind.PUSH, key=100, iteration=0, priority=9,
                    payload=b"L" * 80_000)
        time.sleep(0.01)  # let the bulk transfer get onto the wire
        # Urgent message lands while the bulk transfer is in flight.
        sender.send(WireKind.PUSH, key=7, iteration=0, priority=0,
                    payload=b"H" * 4_000)
        messages, completions = drain(right, 2)
        assert completions == [7, 100], \
            "urgent slice must complete before the preempted bulk transfer"
        payloads = {m.key: m.payload for m in messages}
        assert payloads[7] == b"H" * 4_000
        assert payloads[100] == b"L" * 80_000
        sender.close()
    finally:
        left.close()
        right.close()


def test_fifo_when_priorities_equal():
    left, right = socket.socketpair()
    try:
        sender = PrioritySender(left, sender_id=1, chunk_bytes=1_024)
        for key in range(5):
            sender.send(WireKind.PUSH, key=key, iteration=0, priority=3,
                        payload=bytes([key]) * 2_000)
        _, completions = drain(right, 5)
        assert completions == [0, 1, 2, 3, 4]
        sender.close()
    finally:
        left.close()
        right.close()


def test_control_priority_jumps_all_queues():
    left, right = socket.socketpair()
    try:
        bucket = TokenBucket(400_000.0, burst_bytes=2_048)
        sender = PrioritySender(left, sender_id=2, shaper=bucket,
                                chunk_bytes=1_024)
        sender.send(WireKind.PUSH, key=50, iteration=0, priority=0,
                    payload=b"x" * 40_000)
        sender.send(WireKind.HEARTBEAT, key=0, iteration=1,
                    priority=CONTROL_PRIORITY)
        _, completions = drain(right, 2)
        assert completions[0] == 0, "heartbeat must not queue behind data"
        sender.close()
    finally:
        left.close()
        right.close()


def test_timeline_records_every_chunk():
    left, right = socket.socketpair()
    try:
        sender = PrioritySender(left, sender_id=0, chunk_bytes=1_000)
        sender.send(WireKind.PUSH, key=1, iteration=0, priority=0,
                    payload=b"t" * 5_500)
        drain(right, 1)
        sender.flush()
        assert len(sender.timeline) == 6  # ceil(5500 / 1000)
        starts = [r.start for r in sender.timeline]
        assert starts == sorted(starts)
        assert sum(r.nbytes for r in sender.timeline) > 5_500  # + headers
        trace = timeline_utilization(sender.timeline)
        assert trace.total_bytes(0, "tx") == sum(r.nbytes
                                                 for r in sender.timeline)
        assert goodput_bytes_per_s(sender.timeline) > 0
        sender.close()
    finally:
        left.close()
        right.close()


def test_shaped_goodput_near_configured_rate():
    """The bucket holds long-run goodput near the configured rate."""
    left, right = socket.socketpair()
    try:
        rate = 1_000_000.0
        sender = PrioritySender(left, sender_id=0,
                                shaper=TokenBucket(rate, burst_bytes=8_192),
                                chunk_bytes=4_096)
        sender.send(WireKind.PUSH, key=1, iteration=0, priority=0,
                    payload=b"g" * 200_000)
        drain(right, 1)
        sender.flush()
        measured = goodput_bytes_per_s(sender.timeline)
        assert 0.5 * rate < measured < 2.0 * rate
        sender.close()
    finally:
        left.close()
        right.close()


# ----------------------------------------------------------------------
# Scheduling-core property battery (shared by the threaded and asyncio
# senders: AsyncPrioritySender drives this exact ChunkScheduler +
# TokenBucket pair, so these properties pin both substrates).
# ----------------------------------------------------------------------
@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("reserve"),
                  st.integers(min_value=0, max_value=5_000)),
        st.tuples(st.just("advance"),
                  st.floats(min_value=0.0, max_value=2.0,
                            allow_nan=False, allow_infinity=False))),
    min_size=1, max_size=40),
       rate=st.sampled_from([100.0, 1_000.0, 250_000.0]),
       burst=st.sampled_from([1, 100, 4_096]))
@settings(max_examples=200, deadline=None)
def test_token_bucket_conserves_bytes(ops, rate, burst):
    """Conservation law: however reserves and idle periods interleave,
    the bucket never grants more than ``burst + rate * elapsed`` bytes —
    the shaped link cannot be overdrawn, with or without preemption."""
    clock = FakeClock()
    bucket = TokenBucket(rate, burst_bytes=burst, clock=clock)
    granted = 0
    for op, value in ops:
        if op == "advance":
            clock.t += value
        else:
            wait = bucket.reserve(value)
            assert wait >= 0.0
            clock.t += wait  # the sender sleeps exactly this long
            granted += value
        assert granted <= burst + rate * clock.t + 1e-6, (
            f"bucket overdrawn: granted {granted} bytes but only "
            f"{burst + rate * clock.t:.1f} were available")


#: Adversarial streams: many urgent (low value) priorities arriving
#: late, bulk messages early — the pattern that starves naive queues.
adversarial_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=1, max_value=200)),
    min_size=2, max_size=24)


@given(specs=adversarial_specs,
       pops_between=st.lists(st.integers(min_value=0, max_value=3),
                             min_size=1, max_size=24),
       chunk_bytes=st.sampled_from([1, 16, 128]))
@settings(max_examples=150, deadline=None)
def test_scheduler_is_starvation_free_within_a_priority_class(
        specs, pops_between, chunk_bytes):
    """Starvation-freedom: once arrivals stop, every message completes;
    and within one priority class completion order equals enqueue order
    (a message is only ever bypassed by *strictly* more urgent traffic,
    never by an equal-priority later arrival)."""
    sched = ChunkScheduler(chunk_bytes=chunk_bytes)
    completions = []
    push_order = {}  # priority class -> keys in enqueue order
    for key, (priority, size) in enumerate(specs):
        sched.push(WireKind.PUSH, key, 0, priority, b"x" * size)
        push_order.setdefault(priority, []).append((key, priority))
        for _ in range(pops_between[key % len(pops_between)]):
            popped = sched.pop_chunk()
            if popped is None:
                break
            item, _, _, done, _ = popped
            if done:
                completions.append((item.key, item.priority))
    while len(sched):  # arrivals stopped: drain to empty
        item, _, _, done, _ = sched.pop_chunk()
        if done:
            completions.append((item.key, item.priority))
    assert sorted(k for k, _ in completions) == list(range(len(specs))), \
        "a message starved: never completed after arrivals stopped"
    for priority, expected in push_order.items():
        got = [c for c in completions if c[1] == priority]
        assert got == expected, (
            f"priority {priority}: completion order {got} != enqueue "
            f"order {expected} — intra-class FIFO (bounded bypass) broken")


@given(specs=adversarial_specs, chunk_bytes=st.sampled_from([1, 16, 128]))
@settings(max_examples=100, deadline=None)
def test_scheduler_purge_removes_only_the_named_kinds(specs, chunk_bytes):
    """Reconnect surgery: purging CHUNK_ACKs drops every queued ack and
    nothing else, and the survivors still drain in (priority, FIFO)
    order with all their bytes."""
    sched = ChunkScheduler(chunk_bytes=chunk_bytes)
    expected_survivors = {}
    for key, (priority, size) in enumerate(specs):
        kind = WireKind.CHUNK_ACK if key % 3 == 0 else WireKind.PUSH
        sched.push(kind, key, 0, priority, b"p" * size)
        if kind is not WireKind.CHUNK_ACK:
            expected_survivors[key] = size
    purged = sched.purge((WireKind.CHUNK_ACK,))
    assert purged == len(specs) - len(expected_survivors)
    drained = {}
    while len(sched):
        item, chunk, _, done, _ = sched.pop_chunk()
        assert item.kind is not WireKind.CHUNK_ACK
        drained[item.key] = drained.get(item.key, 0) + len(chunk)
    assert drained == expected_survivors
