"""Membership layer tests: schedule arithmetic, the EpochTracker state
machine (hypothesis property tests over join/leave orderings), config
validation, and the elastic in-process reference.

The tracker properties proven here are the protocol's core safety
claims: epoch commits are strictly monotonic, an epoch never commits
before every barrier token and every earlier round arrived, every round
belongs to exactly one epoch's membership (no round mixes two), and a
worker that leaves and rejoins is handled cleanly as two spans.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.calibration import run_inprocess
from repro.live.config import LiveClusterConfig
from repro.live.membership import (
    EpochTracker,
    MembershipEpoch,
    MembershipError,
    MembershipSchedule,
    elastic_reference,
    epoch_plans,
)

WORKER_UNIVERSE = (0, 1, 2, 3, 4)


def small_cfg(**overrides) -> LiveClusterConfig:
    defaults = dict(n_workers=3, n_servers=2, iterations=4, batch_size=6,
                    in_size=6, hidden=8, depth=1, n_train=24, n_val=8,
                    fwd_layer_s=0.0, bwd_layer_s=0.0)
    defaults.update(overrides)
    return LiveClusterConfig(**defaults)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
epoch_sets = st.lists(
    st.sets(st.sampled_from(WORKER_UNIVERSE), min_size=1, max_size=5),
    min_size=1, max_size=4)


@st.composite
def schedules(draw):
    worker_sets = draw(epoch_sets)
    epochs = tuple(
        MembershipEpoch(workers=tuple(sorted(ws)),
                        rounds=draw(st.integers(min_value=1, max_value=3)))
        for ws in worker_sets)
    return MembershipSchedule(epochs=epochs)


def all_tokens(sched: MembershipSchedule):
    """Every JOIN/LEAVE barrier token the schedule ever produces."""
    tokens = []
    for e in range(sched.n_epochs):
        tokens.extend(("join", w, e) for w in sched.active(e))
        tokens.extend(("leave", w, e) for w in sched.leavers(e))
    return tokens


# ----------------------------------------------------------------------
# Schedule arithmetic
# ----------------------------------------------------------------------
@given(sched=schedules())
@settings(max_examples=200, deadline=None)
def test_every_round_belongs_to_exactly_one_epoch(sched):
    """No round mixes two memberships: round -> epoch is a total,
    single-valued map consistent with the epoch round ranges."""
    seen = []
    for e in range(sched.n_epochs):
        seen.extend((t, e) for t in sched.rounds_of(e))
    assert [t for t, _ in seen] == list(range(sched.total_rounds))
    for t, e in seen:
        assert sched.round_epoch(t) == e


@given(sched=schedules())
@settings(max_examples=200, deadline=None)
def test_spans_partition_each_workers_activity(sched):
    """Spans are maximal, disjoint, ordered; rejoin-after-leave means
    more than one span, each one clean (starts with a join, ends with a
    leave or the final epoch)."""
    for w in sched.all_workers:
        spans = sched.spans(w)
        assert spans, f"worker {w} is in all_workers but has no span"
        covered = set()
        prev_end = -2
        for e0, e1 in spans:
            assert e0 <= e1
            assert e0 > prev_end + 1, "adjacent spans must be merged"
            prev_end = e1
            covered.update(range(e0, e1 + 1))
            assert w in sched.joiners(e0)
            if e1 + 1 < sched.n_epochs:
                assert w in sched.leavers(e1)
        assert covered == {e for e in range(sched.n_epochs)
                           if w in sched.active(e)}


@given(sched=schedules())
@settings(max_examples=200, deadline=None)
def test_ranks_are_dense_and_sorted(sched):
    for e in range(sched.n_epochs):
        active = sched.active(e)
        assert list(active) == sorted(active)
        assert [sched.rank_of(e, w) for w in active] == \
            list(range(len(active)))


# ----------------------------------------------------------------------
# EpochTracker property tests over join/leave orderings
# ----------------------------------------------------------------------
@given(sched=schedules(), data=st.data())
@settings(max_examples=200, deadline=None)
def test_tracker_commits_monotonically_under_any_token_order(sched, data):
    """Feed every barrier token in an arbitrary order, committing
    eagerly: commits advance strictly one epoch at a time, never before
    all of the epoch's tokens arrived, and the run finishes."""
    tokens = data.draw(st.permutations(all_tokens(sched)))
    tracker = EpochTracker(sched)
    commits = []
    for kind, w, e in tokens:
        if kind == "join":
            tracker.note_join(w, e)
        else:
            tracker.note_leave(w, e)
        while (not tracker.finished
               and tracker.ready_to_commit(
                   tracker.current + 1,
                   sched.first_round(tracker.current + 1))):
            nxt = tracker.current + 1
            joins, leaves = tracker.missing(nxt)
            assert not joins and not leaves
            tracker.commit(nxt, sched.first_round(nxt))
            commits.append(nxt)
    assert commits == list(range(sched.n_epochs))
    assert tracker.finished


@given(sched=schedules(), data=st.data())
@settings(max_examples=100, deadline=None)
def test_tracker_never_commits_with_missing_tokens(sched, data):
    """Withhold one arbitrary token: the epoch it belongs to (and every
    later one) must never become committable."""
    tokens = all_tokens(sched)
    withheld = data.draw(st.sampled_from(tokens))
    order = data.draw(st.permutations([t for t in tokens if t != withheld]))
    kind, _w, e = withheld
    blocked_epoch = e if kind == "join" else e + 1
    tracker = EpochTracker(sched)
    for k, w, ep in order:
        if k == "join":
            tracker.note_join(w, ep)
        else:
            tracker.note_leave(w, ep)
        while (not tracker.finished
               and tracker.ready_to_commit(
                   tracker.current + 1,
                   sched.first_round(tracker.current + 1))):
            tracker.commit(tracker.current + 1,
                           sched.first_round(tracker.current + 1))
    assert tracker.current < blocked_epoch


def test_tracker_rejects_duplicates_and_strangers():
    sched = MembershipSchedule(epochs=(
        MembershipEpoch(workers=(0, 1), rounds=1),
        MembershipEpoch(workers=(0, 2), rounds=1),
    ))
    tracker = EpochTracker(sched)
    tracker.note_join(0, 0)
    with pytest.raises(MembershipError):
        tracker.note_join(0, 0)          # duplicate
    with pytest.raises(MembershipError):
        tracker.note_join(3, 0)          # not in the schedule
    with pytest.raises(MembershipError):
        tracker.note_leave(0, 0)         # 0 stays for epoch 1
    tracker.note_join(1, 0)
    tracker.commit(0, 0)
    with pytest.raises(MembershipError):
        tracker.note_join(1, 0)          # epoch already committed
    with pytest.raises(MembershipError):
        tracker.commit(1, sched.first_round(1))  # tokens missing


def test_tracker_rejects_commit_before_rounds_applied():
    sched = MembershipSchedule(epochs=(
        MembershipEpoch(workers=(0,), rounds=3),
        MembershipEpoch(workers=(0, 1), rounds=1),
    ))
    tracker = EpochTracker(sched)
    tracker.note_join(0, 0)
    tracker.commit(0, 0)
    tracker.note_join(0, 1)
    tracker.note_join(1, 1)
    assert not tracker.ready_to_commit(1, rounds_applied=2)
    assert tracker.ready_to_commit(1, rounds_applied=3)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_schedule_must_cover_config_iterations():
    sched = MembershipSchedule.static(2, iterations=3)
    with pytest.raises(MembershipError):
        small_cfg(n_workers=2, iterations=4, membership=sched)


def test_schedule_rejects_worker_outside_id_space():
    sched = MembershipSchedule(epochs=(
        MembershipEpoch(workers=(0, 5), rounds=4),))
    with pytest.raises(MembershipError):
        small_cfg(n_workers=3, iterations=4, membership=sched)


def test_schedule_rejects_indivisible_epoch_batch():
    sched = MembershipSchedule(epochs=(
        MembershipEpoch(workers=(0, 1, 2), rounds=2),
        MembershipEpoch(workers=(0, 1), rounds=2),
    ))
    with pytest.raises(MembershipError):
        small_cfg(batch_size=9, membership=sched)  # 9 % 2 != 0


def test_schedule_rejects_two_tier():
    sched = MembershipSchedule.static(4, iterations=4)
    with pytest.raises(MembershipError):
        small_cfg(n_workers=4, batch_size=8, placement="two_tier",
                  membership=sched)


def test_epoch_plans_share_one_key_universe():
    sched = MembershipSchedule(epochs=(
        MembershipEpoch(workers=(0, 1), rounds=2),
        MembershipEpoch(workers=(0, 1, 2), rounds=2, placement="balanced"),
    ))
    cfg = small_cfg(membership=sched)
    plans = epoch_plans(cfg)
    assert len(plans) == 2
    ref = [(m.key, m.name, m.start, m.stop) for m in plans[0].metas]
    got = [(m.key, m.name, m.start, m.stop) for m in plans[1].metas]
    assert got == ref, "placement overrides may only move keys"
    assert any(a.server != b.server
               for a, b in zip(plans[0].metas, plans[1].metas)), \
        "balanced override should move at least one key between shards"


# ----------------------------------------------------------------------
# Elastic reference numerics
# ----------------------------------------------------------------------
def test_elastic_reference_reduces_to_static_reference():
    """With a static schedule the elastic reference IS the in-process
    reference, bit for bit — anchoring elasticity to the existing
    ground truth."""
    cfg = small_cfg(membership=MembershipSchedule.static(3, iterations=4))
    base = small_cfg()
    for strategy in ("baseline", "p3"):
        ref = run_inprocess(base, strategy)
        elastic = elastic_reference(cfg, strategy)
        assert set(ref) == set(elastic)
        for name in ref:
            np.testing.assert_array_equal(elastic[name], ref[name])


def test_elastic_reference_depends_on_membership():
    """A membership change must actually change the trained values
    (otherwise every elastic conformance test would be vacuous)."""
    static = small_cfg(membership=MembershipSchedule.static(3, 4))
    elastic = small_cfg(membership=MembershipSchedule(epochs=(
        MembershipEpoch(workers=(0, 1), rounds=2),
        MembershipEpoch(workers=(0, 1, 2), rounds=2),
    )))
    a = elastic_reference(static, "p3")
    b = elastic_reference(elastic, "p3")
    assert any(not np.array_equal(a[name], b[name]) for name in a)
