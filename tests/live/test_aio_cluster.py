"""End-to-end asyncio cluster tests: conformance, elasticity, chaos.

The tentpole acceptance battery.  Every test pits the single-process
event-loop substrate (:func:`repro.live.aio.run_live_aio`) against an
independent ground truth:

* **Cross-substrate conformance** — final parameters bit-identical to
  the in-process functional store, for every placement policy
  (round_robin / balanced / two_tier) and both strategies.
* **Elastic membership** — runs where workers JOIN/LEAVE between epochs
  (including a leave+rejoin and a placement override with live key
  migration) match :func:`repro.live.membership.elastic_reference` bit
  for bit; a hypothesis sweep drives randomly drawn schedules through
  the real cluster.
* **Chaos under elasticity** — the acceptance run: frames dropped,
  duplicated, and corrupted *while the membership changes mid-run*, and
  the values still match the reference exactly.
* **Scale** — ``calibrate()`` completes with 64 workers on one event
  loop, bit-identical (the run the thread-per-connection stack could
  not host).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.calibration import calibrate, run_inprocess
from repro.live import LiveClusterConfig
from repro.live.aio import run_live_aio
from repro.live.membership import (
    MembershipEpoch,
    MembershipSchedule,
    elastic_reference,
)
from repro.sim.faults import ChaosFault, FaultPlan

pytestmark = pytest.mark.slow


def aio_cfg(**overrides) -> LiveClusterConfig:
    """3 workers + 2 shards, tiny MLP, no emulated compute: fast enough
    to run dozens of full clusters in one test module."""
    defaults = dict(
        n_workers=3, n_servers=2, iterations=4, batch_size=6,
        in_size=6, hidden=8, depth=1, n_train=24, n_val=8,
        fwd_layer_s=0.0, bwd_layer_s=0.0, heartbeat_interval_s=0.2,
    )
    defaults.update(overrides)
    return LiveClusterConfig(**defaults)


def assert_params_equal(got, want, context=""):
    assert set(got) == set(want)
    for name in want:
        np.testing.assert_array_equal(
            got[name], want[name],
            err_msg=f"{context}: {name} diverged")


#: The canonical elastic schedule: join (epoch 1, with a placement
#: override forcing live key migration), leave (epoch 2), rejoin
#: (epoch 3).  Worker 1 leaves and comes back; worker 2 joins mid-run.
ELASTIC_SCHED = MembershipSchedule(epochs=(
    MembershipEpoch(workers=(0, 1), rounds=1),
    MembershipEpoch(workers=(0, 1, 2), rounds=1, placement="balanced"),
    MembershipEpoch(workers=(0, 2), rounds=1),
    MembershipEpoch(workers=(0, 1, 2), rounds=1),
))


# ----------------------------------------------------------------------
# Cross-substrate conformance (static membership)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("placement", ["round_robin", "balanced"])
@pytest.mark.parametrize("strategy", ["baseline", "p3"])
def test_aio_matches_inprocess_bit_for_bit(placement, strategy):
    cfg = aio_cfg(strategy=strategy, placement=placement)
    live = run_live_aio(cfg)
    ref = run_inprocess(cfg)
    assert_params_equal(live.final_params, ref,
                        f"{placement}/{strategy}")


@pytest.mark.parametrize("strategy", ["baseline", "p3"])
def test_aio_two_tier_matches_inprocess(strategy):
    cfg = aio_cfg(n_workers=4, batch_size=8, placement="two_tier",
                  agg_group_size=2, strategy=strategy)
    live = run_live_aio(cfg)
    ref = run_inprocess(cfg)
    assert_params_equal(live.final_params, ref, f"two_tier/{strategy}")


def test_aio_reports_the_run_result_schema():
    """Iteration times, TX timelines, heartbeats, and transport counters
    survive the substrate change with the blocking driver's schema."""
    cfg = aio_cfg(strategy="p3", rate_bytes_per_s=5_000_000.0,
                  chunk_bytes=4096)
    result = run_live_aio(cfg)
    for wid in range(cfg.n_workers):
        times = result.iteration_times[wid]
        assert len(times) == cfg.iterations
        assert (times > 0).all()
        assert result.timelines[wid], "every worker must record tx chunks"
        assert "frames_retransmitted" in result.transport_stats[wid]
    assert result.mean_iteration_time > 0
    assert result.utilization(worker=0).total_bytes(0, "tx") > 0


# ----------------------------------------------------------------------
# Elastic membership
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ["baseline", "p3"])
def test_elastic_join_leave_rejoin_matches_reference(strategy):
    """Workers join, leave, and rejoin between epochs — with a placement
    override migrating keys live — and every final replica matches the
    elastic in-process reference bit for bit."""
    cfg = aio_cfg(membership=ELASTIC_SCHED, strategy=strategy)
    live = run_live_aio(cfg)
    ref = elastic_reference(cfg, strategy)
    assert_params_equal(live.final_params, ref, f"elastic/{strategy}")


def test_elastic_run_is_deterministic_under_a_fixed_seed():
    a = run_live_aio(aio_cfg(membership=ELASTIC_SCHED, strategy="p3"))
    b = run_live_aio(aio_cfg(membership=ELASTIC_SCHED, strategy="p3"))
    assert_params_equal(a.final_params, b.final_params, "determinism")


@st.composite
def elastic_schedules(draw):
    """1-3 epochs over workers {0,1,2}, 1-2 rounds each: small enough to
    run the real cluster per example, rich enough to cover every join /
    leave / rejoin shape."""
    n_epochs = draw(st.integers(min_value=1, max_value=3))
    epochs = tuple(
        MembershipEpoch(
            workers=tuple(sorted(draw(
                st.sets(st.sampled_from((0, 1, 2)), min_size=1,
                        max_size=3)))),
            rounds=draw(st.integers(min_value=1, max_value=2)))
        for _ in range(n_epochs))
    return MembershipSchedule(epochs=epochs)


@given(sched=elastic_schedules())
@settings(max_examples=8, deadline=None, derandomize=True)
def test_random_membership_schedules_match_reference(sched):
    """Property, end to end: ANY membership schedule the strategy can
    draw trains to the exact values of the in-process elastic reference
    (batch 6 divides every possible active-set size)."""
    cfg = aio_cfg(iterations=sched.total_rounds, warmup=0, membership=sched)
    live = run_live_aio(cfg, strategy="p3")
    ref = elastic_reference(cfg, "p3")
    assert_params_equal(live.final_params, ref, f"sched={sched.epochs}")


# ----------------------------------------------------------------------
# Chaos under elasticity (the acceptance run)
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_chaos_during_membership_change_preserves_bit_identity():
    """8% drop + 3% dup + 3% corrupt on every connection while worker 2
    joins mid-run: Go-Back-N recovery + the epoch barrier keep the
    values exactly equal to the clean reference."""
    plan = FaultPlan((ChaosFault(machine=-1, drop_rate=0.08, dup_rate=0.03,
                                 corrupt_rate=0.03),), seed=2)
    sched = MembershipSchedule(epochs=(
        MembershipEpoch(workers=(0, 1), rounds=2),
        MembershipEpoch(workers=(0, 1, 2), rounds=2),
    ))
    cfg = aio_cfg(membership=sched, fault_plan=plan,
                  rate_bytes_per_s=5_000_000.0, chunk_bytes=4096)
    live = run_live_aio(cfg, strategy="p3")
    ref = elastic_reference(cfg, "p3")
    assert_params_equal(live.final_params, ref, "chaos+elastic")
    totals: dict = {}
    for stats in live.transport_stats.values():
        for k, v in stats.items():
            totals[k] = totals.get(k, 0) + v
    assert totals.get("frames_dropped", 0) > 0, \
        "chaos must actually have bitten"
    assert totals.get("frames_retransmitted", 0) > 0, \
        "recovery must actually have happened"
    assert totals.get("unacked_frames", 0) == 0, \
        "every reliable frame must be acknowledged by the end"


# ----------------------------------------------------------------------
# Scale: 64 workers on one event loop
# ----------------------------------------------------------------------
def test_calibrate_completes_at_64_workers_on_the_aio_stack():
    """The run the thread-per-connection stack could not host: a full
    calibrate() — baseline + P3, live vs in-process — with 64 workers
    (128 worker-shard connections) on a single event loop."""
    cfg = LiveClusterConfig(
        n_workers=64, n_servers=2, iterations=3, warmup=1,
        batch_size=64, in_size=6, hidden=8, depth=1,
        n_train=128, n_val=16,
        fwd_layer_s=0.0005, bwd_layer_s=0.001,
        rate_bytes_per_s=50_000_000.0, chunk_bytes=4096,
        heartbeat_interval_s=0.5,
    )
    report = calibrate(cfg, runner=run_live_aio)
    assert report.bit_identical, \
        f"64-worker aio run diverged (max |diff| = {report.max_abs_diff})"
    assert report.live_baseline_s > 0 and report.live_p3_s > 0
