"""Unit tests for LayerSpec / ModelSpec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.base import (
    BYTES_PER_PARAM,
    LayerSpec,
    ModelSpec,
    conv_flops,
    conv_params,
    dense_flops,
    dense_params,
    make_layers,
)


def _model(layer_params=(100, 200, 300), batch=8, sps=10.0, **kw):
    layers = tuple(LayerSpec(f"l{i}", p, float(p)) for i, p in enumerate(layer_params))
    return ModelSpec("m", layers, batch, sps, **kw)


def test_layer_validation():
    with pytest.raises(ValueError):
        LayerSpec("bad", 0, 1.0)
    with pytest.raises(ValueError):
        LayerSpec("bad", 10, -1.0)


def test_layer_bytes():
    assert LayerSpec("l", 25, 1.0).bytes == 25 * BYTES_PER_PARAM


def test_model_validation():
    with pytest.raises(ValueError):
        ModelSpec("m", (), 8, 10.0)
    with pytest.raises(ValueError):
        _model(batch=0)
    with pytest.raises(ValueError):
        _model(sps=0.0)
    with pytest.raises(ValueError):
        _model(forward_fraction=1.5)


def test_totals_and_counts():
    m = _model((100, 200, 300))
    assert m.total_params == 600
    assert m.total_bytes == 2400
    assert m.n_layers == 3
    assert list(m.param_counts()) == [100, 200, 300]
    assert m.heaviest_layer == 2
    assert m.param_fraction(2) == pytest.approx(0.5)


def test_iteration_compute_time_and_scale():
    m = _model(batch=20, sps=10.0)
    assert m.iteration_compute_time() == pytest.approx(2.0)
    assert m.iteration_compute_time(compute_scale=2.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        m.iteration_compute_time(0.0)


def test_forward_backward_times_sum_to_iteration():
    m = _model(batch=20, sps=10.0)
    total = m.forward_times().sum() + m.backward_times().sum()
    assert total == pytest.approx(m.iteration_compute_time())


def test_forward_fraction_split():
    m = _model(batch=30, sps=10.0, forward_fraction=0.25)
    assert m.forward_times().sum() == pytest.approx(0.75)
    assert m.backward_times().sum() == pytest.approx(2.25)


def test_times_proportional_to_flops():
    layers = (LayerSpec("a", 10, 1.0), LayerSpec("b", 10, 3.0))
    m = ModelSpec("m", layers, 8, 10.0)
    fwd = m.forward_times()
    assert fwd[1] == pytest.approx(3 * fwd[0])


def test_zero_flops_falls_back_to_params():
    layers = (LayerSpec("a", 10, 0.0), LayerSpec("b", 30, 0.0))
    m = ModelSpec("m", layers, 8, 10.0)
    fwd = m.forward_times()
    assert fwd[1] == pytest.approx(3 * fwd[0])


def test_describe_contains_key_facts():
    text = _model().describe()
    assert "3 parameter arrays" in text
    assert "heaviest array" in text


def test_param_helpers():
    assert conv_params(3, 4, 8) == 3 * 3 * 4 * 8
    assert conv_params(3, 4, 8, bias=True) == 3 * 3 * 4 * 8 + 8
    assert conv_flops(3, 4, 8, 10, 10) == 2 * 3 * 3 * 4 * 8 * 100
    assert dense_params(10, 5) == 55
    assert dense_params(10, 5, bias=False) == 50
    assert dense_flops(10, 5) == 100


def test_make_layers():
    layers = make_layers([("a", 10, 1.0), ("b", 20, 2.0)])
    assert [l.name for l in layers] == ["a", "b"]


@given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=30),
       st.integers(min_value=1, max_value=256),
       st.floats(min_value=0.1, max_value=1e4, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_property_time_split_always_consistent(params, batch, sps):
    layers = tuple(LayerSpec(f"l{i}", p, float(p)) for i, p in enumerate(params))
    m = ModelSpec("m", layers, batch, sps)
    fwd, bwd = m.forward_times(), m.backward_times()
    assert (fwd >= 0).all() and (bwd >= 0).all()
    assert fwd.sum() + bwd.sum() == pytest.approx(m.iteration_compute_time())
    # backward is twice forward with the default 1/3 fraction
    assert bwd.sum() == pytest.approx(2 * fwd.sum())
