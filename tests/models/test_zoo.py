"""The model zoo must reproduce the paper's Figure 5 facts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    available_models,
    fig4_model,
    fig6_model,
    get_model,
    inceptionv3,
    resnet50,
    resnet110_cifar,
    sockeye,
    toy_model,
    vgg19,
)


def test_registry_contains_all_builders():
    names = available_models()
    for expected in ("resnet50", "vgg19", "inceptionv3", "sockeye",
                     "resnet110_cifar", "toy3"):
        assert expected in names


def test_unknown_model_raises():
    with pytest.raises(KeyError):
        get_model("lenet5")


def test_resnet50_matches_published_size():
    m = resnet50()
    assert m.total_params == pytest.approx(25.5e6, rel=0.01)
    # Figure 5(a): ~160 parameter arrays, none above ~2.4M params.
    assert 155 <= m.n_layers <= 165
    assert m.param_counts().max() < 2.5e6


def test_vgg19_matches_published_size_and_skew():
    m = vgg19()
    assert m.total_params == pytest.approx(143.7e6, rel=0.01)
    # Section 3: the fc6 weight holds 71.5% of all parameters.
    share = m.param_fraction(m.heaviest_layer)
    assert share == pytest.approx(0.715, abs=0.005)
    # Figure 5(b): ~40 arrays.
    assert 36 <= m.n_layers <= 42


def test_inceptionv3_size():
    m = inceptionv3()
    assert m.total_params == pytest.approx(23.8e6, rel=0.05)
    # Many small layers: the largest array is <10% of the model.
    assert m.param_fraction(m.heaviest_layer) < 0.10


def test_sockeye_heavy_initial_layer():
    m = sockeye()
    # Figure 5(c): the heaviest array is the *first* layer (src embedding).
    assert m.heaviest_layer == 0
    assert m.layers[0].params == pytest.approx(8.45e6, rel=0.01)
    assert m.jitter_sigma > 0  # variable sequence lengths


def test_resnet110_size():
    m = resnet110_cifar()
    assert m.total_params == pytest.approx(1.73e6, rel=0.05)


def test_image_models_have_light_early_layers():
    """The general trend of Figure 5: image classifiers' final FC layers
    are heavier than initial convolutions."""
    for model in (resnet50(), vgg19()):
        counts = model.param_counts()
        early = counts[: model.n_layers // 4].max()
        late = counts[model.n_layers // 2:].max()
        assert late > early


def test_toy_models():
    t = toy_model()
    assert t.n_layers == 3
    # fwd == bwd == 1 s per layer with the defaults
    assert t.forward_times() == pytest.approx(np.ones(3))
    assert t.backward_times() == pytest.approx(np.ones(3))
    f6 = fig6_model()
    assert f6.layers[1].params == 3 * f6.layers[0].params
    assert fig4_model().n_layers == 3


def test_all_models_have_positive_layer_sizes():
    for name in available_models():
        m = get_model(name)
        assert (m.param_counts() > 0).all()
        assert m.total_params > 0


def test_alexnet_extreme_fc_skew():
    from repro.models import alexnet
    m = alexnet()
    assert m.total_params == pytest.approx(61e6, rel=0.02)
    counts = m.param_counts()
    fc_share = sorted(counts)[-2:]  # fc6 + fc7 weights
    assert sum(fc_share) / m.total_params > 0.85


def test_transformer_lm_gpt2_small_size():
    from repro.models import transformer_lm
    m = transformer_lm()
    # GPT-2 small is ~117M tied; untied adds the 38.6M-param LM head.
    assert m.total_params == pytest.approx(163e6, rel=0.02)
    tied = transformer_lm(tied_head=True)
    assert tied.total_params == pytest.approx(124e6, rel=0.02)
    # Sockeye-like: the heaviest array is the token embedding (index 0).
    assert m.heaviest_layer in (0, m.n_layers - 1)
    assert m.layers[0].name == "tok_embed"


def test_transformer_lm_validation():
    from repro.models import transformer_lm
    with pytest.raises(ValueError):
        transformer_lm(n_layers=0)


def test_builders_are_deterministic():
    a, b = resnet50(), resnet50()
    assert a.param_counts().tolist() == b.param_counts().tolist()
