"""Property battery for cross-job fairness (hypothesis, derandomized).

Three promises from ``docs/tenancy.md``, hunted under arbitrary weights,
op sequences and arrival orders:

1. **Weighted max-min fairness** — greedy (always-backlogged) tenants
   drain the shared link in proportion to their weights;
2. **Work conservation** — the link never idles while anyone is
   backlogged: the total goodput matches the full link rate, and an
   idle tenant's share is donated to the active ones;
3. **Starvation freedom** — every reservation's wait is bounded by the
   outstanding debt over the link rate, and the FIFO scheduler admits
   every job eventually, never bypassing an eligible head-of-line job
   that is blocked only on capacity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tenancy import (
    ClusterLease,
    FairShaper,
    JobScheduler,
    JobSpec,
    TenancyError,
)

pytestmark = pytest.mark.tenancy

SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def greedy_bytes(weights, rate=1000.0, burst=100, chunk=50, horizon=200.0,
                 active=None):
    """Closed-loop greedy senders sharing one FairShaper.

    Each active tenant keeps a reservation outstanding at all times
    (reserve -> sleep ``wait`` -> reserve ...), all driven off one fake
    clock; returns bytes put on the wire per tenant by ``horizon``.
    """
    clk = FakeClock()
    shaper = FairShaper(rate, burst, clock=clk)
    shares = {n: shaper.add_tenant(n, w) for n, w in sorted(weights.items())}
    if active is None:
        active = list(weights)
    next_free = {n: 0.0 for n in active}
    sent = {n: 0 for n in weights}
    while True:
        name = min(next_free, key=lambda n: (next_free[n], n))
        t = next_free[name]
        if t >= horizon:
            break
        clk.t = max(clk.t, t)
        wait = shares[name].reserve(chunk)
        assert wait >= 0.0
        sent[name] += chunk
        next_free[name] = clk.t + wait
    return sent


# ----------------------------------------------------------------------
# FairShaper: fairness + work conservation
# ----------------------------------------------------------------------
@SETTINGS
@given(w1=st.integers(min_value=1, max_value=8),
       w2=st.integers(min_value=1, max_value=8))
def test_weighted_max_min_fairness(w1: int, w2: int) -> None:
    sent = greedy_bytes({"a": float(w1), "b": float(w2)})
    assert sent["a"] / sent["b"] == pytest.approx(w1 / w2, rel=0.15)


@SETTINGS
@given(weights=st.lists(st.integers(min_value=1, max_value=6),
                        min_size=1, max_size=5))
def test_work_conservation_full_link(weights) -> None:
    """Backlogged tenants collectively drain the whole link rate."""
    rate, horizon, burst, chunk = 1000.0, 100.0, 100, 50
    wmap = {f"t{i}": float(w) for i, w in enumerate(weights)}
    sent = greedy_bytes(wmap, rate=rate, burst=burst, chunk=chunk,
                        horizon=horizon)
    total = sum(sent.values())
    # Lower bound: the wire never idles.  Upper bound: rate * horizon
    # plus the initial burst credit and the debt still in flight at the
    # horizon (the wait forecast ignores competitors' *future* arrivals,
    # so a few chunks per tenant can be outstanding).
    assert total >= rate * horizon
    assert total <= rate * horizon + burst + 10 * chunk * len(weights)


@SETTINGS
@given(w_active=st.integers(min_value=1, max_value=6),
       w_idle=st.integers(min_value=1, max_value=6))
def test_idle_tenant_donates_share(w_active: int, w_idle: int) -> None:
    """A lone active tenant gets the full link regardless of weights."""
    rate, horizon = 1000.0, 100.0
    sent = greedy_bytes({"busy": float(w_active), "idle": float(w_idle)},
                        rate=rate, horizon=horizon, active=["busy"])
    assert sent["idle"] == 0
    assert sent["busy"] >= rate * horizon  # not rate * w/(w+w') * horizon


@SETTINGS
@given(ops=st.lists(
    st.tuples(st.sampled_from(("reserve", "refund", "tick")),
              st.integers(min_value=0, max_value=2),
              st.integers(min_value=0, max_value=500)),
    max_size=60))
def test_tokens_never_exceed_burst_cap(ops) -> None:
    """Arbitrary reserve/refund/advance interleavings never *lift* a
    tenant above its burst share: after any op, tokens <= max(before,
    cap).  (A tenant registered early may start above its final cap —
    add_tenant splits the burst among the members known so far — but no
    accrual or refund ever adds to a surplus.)"""
    clk = FakeClock()
    shaper = FairShaper(1000.0, 300, clock=clk)
    names = ["a", "b", "c"]
    shares = {n: shaper.add_tenant(n, float(i + 1))
              for i, n in enumerate(names)}
    for kind, who, amount in ops:
        name = names[who]
        before = {n: shaper.tokens(n) for n in names}
        if kind == "reserve":
            assert shares[name].reserve(amount) >= 0.0
        elif kind == "refund":
            shares[name].refund(amount)
        else:
            clk.t += amount / 1000.0
            shaper.reserve(name, 0)  # force an _advance at the new time
        for n in names:
            assert shaper.tokens(n) <= max(before[n],
                                           shares[n].burst) + 1e-6


@SETTINGS
@given(debts=st.lists(st.integers(min_value=0, max_value=5000),
                      min_size=3, max_size=3),
       nbytes=st.integers(min_value=1, max_value=5000))
def test_reserve_wait_bounded_by_debt(debts, nbytes) -> None:
    """Starvation freedom at the shaper: the wait for a reservation is
    at most total-outstanding-debt / link-rate, at least own-debt / rate."""
    clk = FakeClock()
    rate = 1000.0
    shaper = FairShaper(rate, 100, clock=clk)
    names = ["a", "b", "c"]
    shares = {n: shaper.add_tenant(n) for n in names}
    for n, d in zip(names, debts):
        if d:
            shares[n].reserve(d)
    wait = shares["a"].reserve(nbytes)
    own = -shaper.tokens("a")
    total = sum(max(0.0, -shaper.tokens(n)) for n in names)
    if own > 0:
        assert own / rate - 1e-6 <= wait <= total / rate + 1e-6
    else:
        assert wait == 0.0


def test_shaper_validation() -> None:
    shaper = FairShaper(100.0, 10)
    shaper.add_tenant("a")
    with pytest.raises(ValueError):
        shaper.add_tenant("a")
    with pytest.raises(ValueError):
        shaper.add_tenant("b", weight=0.0)
    with pytest.raises(ValueError):
        shaper.reserve("a", -1)
    with pytest.raises(ValueError):
        FairShaper(0.0)


# ----------------------------------------------------------------------
# JobScheduler: starvation freedom + FIFO no-bypass
# ----------------------------------------------------------------------
@st.composite
def workloads(draw):
    n_slots = draw(st.integers(min_value=1, max_value=8))
    n_jobs = draw(st.integers(min_value=1, max_value=10))
    jobs = []
    for i in range(n_jobs):
        deps = ()
        if i:
            picks = draw(st.sets(
                st.integers(min_value=0, max_value=i - 1), max_size=2))
            deps = tuple(f"j{d}" for d in sorted(picks))
        jobs.append(JobSpec(
            name=f"j{i}", tenant=f"t{i % 3}",
            n_workers=draw(st.integers(min_value=1, max_value=n_slots)),
            arrival_s=float(draw(st.integers(min_value=0, max_value=10))),
            after=deps))
    return n_slots, jobs


def drive(scheduler: JobScheduler, completion_order, max_steps=500):
    """Run the admit/complete loop, checking FIFO no-bypass at every
    admission: a job is admitted only if every earlier-queued, arrived
    job still pending has an unmet dependency (i.e. the only thing that
    may hold back an eligible predecessor is head-of-line capacity —
    and then nothing behind it gets in either)."""
    now = 0.0
    for _ in range(max_steps):
        admissions = scheduler.next_admissions(now)
        pending = sorted(scheduler._queue,
                         key=lambda j: (j.arrival_s, j.name))
        for job in admissions:
            for earlier in pending:
                if (earlier.arrival_s, earlier.name) >= (job.arrival_s,
                                                         job.name):
                    break
                if earlier in admissions:
                    continue
                assert not scheduler._eligible(earlier, now), (
                    f"{job.name} bypassed eligible {earlier.name}")
            scheduler.admit(job, now)
        if scheduler.done:
            return now
        if scheduler.running:
            pick = completion_order.draw(
                st.sampled_from(sorted(scheduler.running)))
            now += 1.0
            scheduler.complete(pick, now)
        else:
            nxt = scheduler.next_arrival(now)
            assert nxt is not None, "stuck: nothing running or arriving"
            now = nxt
    raise AssertionError("scheduler did not finish (starvation?)")


@SETTINGS
@given(wl=workloads(), completion_order=st.data())
def test_every_job_eventually_runs(wl, completion_order) -> None:
    n_slots, jobs = wl
    scheduler = JobScheduler(jobs, ClusterLease(n_slots))
    drive(scheduler, completion_order)
    admitted = [e.job for e in scheduler.log if e.kind == "admit"]
    completed = [e.job for e in scheduler.log if e.kind == "complete"]
    assert sorted(admitted) == sorted(j.name for j in jobs)
    assert sorted(completed) == sorted(j.name for j in jobs)
    # Dependencies respected: a job is admitted only after its deps
    # completed.
    events = [(e.kind, e.job) for e in scheduler.log]
    for job in jobs:
        for dep in job.after:
            assert events.index(("complete", dep)) < events.index(
                ("admit", job.name))


def test_lease_pool_accounting() -> None:
    lease = ClusterLease(8)
    a = lease.acquire("a", 3)
    b = lease.acquire("b", 3)
    assert len(set(a) | set(b)) == 6 and lease.available == 2
    with pytest.raises(TenancyError):
        lease.acquire("c", 3)      # only 2 free
    with pytest.raises(TenancyError):
        lease.acquire("a", 1)      # double lease
    assert lease.release("a") == a
    assert lease.available == 5
    with pytest.raises(TenancyError):
        lease.release("a")
    # Freed block is reused contiguously.
    assert lease.acquire("c", 3) == a


def test_scheduler_rejects_oversized_job() -> None:
    with pytest.raises(TenancyError):
        JobScheduler([JobSpec(name="big", tenant="t", n_workers=9)],
                     ClusterLease(8))
