"""Cross-substrate tenancy conformance: one scheduler, two executors.

The :class:`~repro.tenancy.scheduler.JobScheduler` is substrate-agnostic
by construction; these tests pin that down end to end:

* a two-tenant schedule run on the **asyncio live cluster** produces,
  per job, final parameters bit-identical to that job's isolated
  in-process reference — contention (shared FairShaper, interleaved
  event loop) may change *when* things happen, never *what* is computed;
* the admission/completion **ledger kinds-order** of the same workload
  shape agrees between :class:`MultiJobSim` and the live driver when
  the order is forced structurally (capacity head-of-line, explicit
  dependency) — wall-clock vs simulated time must not reorder it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import run_inprocess
from repro.live import LiveClusterConfig
from repro.tenancy import (
    JobSpec,
    TenancyConfig,
    run_live_tenants,
    run_multi_job,
)

pytestmark = [pytest.mark.tenancy, pytest.mark.slow]


def tenant_cfg(strategy: str, **overrides) -> LiveClusterConfig:
    defaults = dict(
        n_workers=3, n_servers=2, iterations=4, batch_size=6,
        in_size=6, hidden=8, depth=1, n_train=24, n_val=8,
        fwd_layer_s=0.0, bwd_layer_s=0.0, heartbeat_interval_s=0.2,
        strategy=strategy,
    )
    defaults.update(overrides)
    return LiveClusterConfig(**defaults)


def two_tenant_schedule(arrival_b=0.0, after_b=(), workers=3):
    jobs = [
        JobSpec(name="a", tenant="alpha", strategy="p3",
                n_workers=workers, weight=2.0),
        JobSpec(name="b", tenant="beta", strategy="baseline",
                n_workers=workers, weight=1.0,
                arrival_s=arrival_b, after=after_b),
    ]
    configs = {
        "a": tenant_cfg("p3", store_seed=7),
        "b": tenant_cfg("baseline", store_seed=11),
    }
    return jobs, configs


def test_live_contended_jobs_match_isolated_references() -> None:
    """Two tenants on one event loop and one shaped fabric: each job's
    final parameters are bit-identical to its solo in-process run."""
    jobs, configs = two_tenant_schedule()
    res = run_live_tenants(jobs, configs, policy="weighted",
                           rate_bytes_per_s=4_000_000.0)
    assert res.job_order("admit") == ("a", "b")  # FIFO tie-break by name
    for name, cfg in configs.items():
        ref = run_inprocess(cfg)
        got = res.jobs[name].result.final_params
        assert set(got) == set(ref)
        for pname in ref:
            np.testing.assert_array_equal(
                got[pname], ref[pname],
                err_msg=f"job {name}: {pname} diverged under contention")
        slo = res.jobs[name].slo()
        assert slo["count"] > 0 and slo["p50"] <= slo["p95"] <= slo["p99"]


@pytest.mark.parametrize(
    "slots,after_b",
    [(3, ()),       # capacity head-of-line: b must wait for a's slots
     (6, ("a",))],  # explicit dependency: b gated on a's completion
    ids=["capacity", "dependency"])
def test_ledger_kinds_order_agrees_with_sim(slots, after_b) -> None:
    jobs, configs = two_tenant_schedule(after_b=after_b)
    live = run_live_tenants(jobs, configs, policy="none", n_slots=slots)

    sim_jobs = [
        JobSpec(name=j.name, tenant=j.tenant, model="toy3",
                strategy=j.strategy, n_workers=j.n_workers,
                weight=j.weight, arrival_s=j.arrival_s, after=j.after,
                iterations=4, warmup=1)
        for j in jobs
    ]
    sim = run_multi_job(sim_jobs, TenancyConfig(
        n_slots=slots, bandwidth_gbps=1.0, policy="none"), monitor=True)

    for kind in ("submit", "admit", "complete"):
        assert live.job_order(kind) == sim.job_order(kind) == ("a", "b")
    # The forced serialization is visible as queue wait on both: b waits
    # out a's whole run, a only sees wall-clock admission jitter.
    assert live.jobs["b"].queue_wait_s >= 0.8 * live.jobs["a"].running_s
    assert sim.jobs["b"].queue_wait_s > 0.0
    assert live.jobs["a"].queue_wait_s < 0.01
    assert sim.jobs["a"].queue_wait_s == 0.0


def test_live_schedule_survives_unshaped_policy_none() -> None:
    """policy="none" with no shared rate: pure admission scheduling,
    results still exact."""
    jobs, configs = two_tenant_schedule()
    res = run_live_tenants(jobs, configs, policy="none")
    for name, cfg in configs.items():
        ref = run_inprocess(cfg)
        got = res.jobs[name].result.final_params
        for pname in ref:
            np.testing.assert_array_equal(got[pname], ref[pname])
