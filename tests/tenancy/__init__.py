"""Fairness, isolation and conformance battery for repro.tenancy."""
