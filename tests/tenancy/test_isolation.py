"""Tenant isolation: sharing a cluster must not perturb a lone job.

Two guarantees, both exact (no tolerances):

* **Bit-identity when alone** — a single-tenant workload pushed through
  :class:`MultiJobSim` produces results bit-identical to the standalone
  :func:`repro.sim.simulate` path with the same config, for every
  placement policy.  The multi-tenant machinery must be zero-overhead
  and zero-perturbation when there is nothing to arbitrate.
* **Determinism under contention** — the same multi-tenant workload run
  twice gives identical ledgers and identical per-job iteration times
  (seeded, no wall-clock leakage into the sim substrate).

The cross-job invariant monitor rides along in both: no message may
cross a job boundary and each job's exactly-once ledger must balance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import get_model
from repro.sim import ClusterConfig, simulate
from repro.strategies import get_strategy
from repro.tenancy import JobSpec, TenancyConfig, run_multi_job

pytestmark = pytest.mark.tenancy

MODEL = "toy3"
BANDWIDTH = 1.0
PLACEMENTS = ("round_robin", "balanced", "two_tier")


def lone_job(placement: str) -> JobSpec:
    return JobSpec(name="only", tenant="t0", model=MODEL, strategy="p3",
                   n_workers=4, iterations=6, warmup=2,
                   placement=placement)


def reference(job: JobSpec, bandwidth: float):
    # Mirror MultiJobSim._launch's ClusterConfig exactly.
    cfg = ClusterConfig(
        n_workers=job.n_workers, bandwidth_gbps=bandwidth,
        latency_s=50e-6, compute_scale=1.0, placement=job.placement,
        agg_group_size=min(4, job.n_workers), seed=job.seed)
    return simulate(get_model(MODEL), get_strategy(job.strategy),
                    cfg, iterations=job.iterations, warmup=job.warmup)


@pytest.mark.parametrize("placement", PLACEMENTS)
def test_single_tenant_bit_identical(placement: str) -> None:
    job = lone_job(placement)
    cfg = TenancyConfig(n_slots=4, bandwidth_gbps=BANDWIDTH,
                        policy="weighted")
    multi = run_multi_job([job], cfg, monitor=True)
    ref = reference(job, BANDWIDTH)
    got = multi.jobs["only"].result
    assert np.array_equal(got.iteration_times, ref.iteration_times)
    assert got.throughput == ref.throughput
    assert got.steady_start == ref.steady_start
    assert got.steady_end == ref.steady_end
    assert got.per_worker_throughput == ref.per_worker_throughput
    # And the job's clock: completed exactly when the standalone run ends.
    assert multi.jobs["only"].admitted_s == 0.0


@pytest.mark.parametrize("policy", ("weighted", "equal", "none"))
def test_contended_run_is_deterministic(policy: str) -> None:
    def workload():
        return [
            JobSpec(name="a", tenant="alpha", model=MODEL, strategy="p3",
                    n_workers=2, iterations=5, warmup=1, weight=2.0),
            JobSpec(name="b", tenant="beta", model=MODEL,
                    strategy="baseline", n_workers=2, iterations=5,
                    warmup=1, weight=1.0),
            JobSpec(name="c", tenant="alpha", model=MODEL, strategy="p3",
                    n_workers=2, iterations=4, warmup=1, weight=2.0,
                    arrival_s=0.5),
        ]

    cfg = TenancyConfig(n_slots=6, bandwidth_gbps=BANDWIDTH, policy=policy)
    r1 = run_multi_job(workload(), cfg, monitor=True)
    r2 = run_multi_job(workload(), cfg, monitor=True)
    assert [(e.t, e.kind, e.job) for e in r1.log] == [
        (e.t, e.kind, e.job) for e in r2.log]
    for name in r1.jobs:
        t1 = r1.jobs[name].iteration_times()
        t2 = r2.jobs[name].iteration_times()
        assert np.array_equal(t1, t2)
        assert r1.jobs[name].completed_s == r2.jobs[name].completed_s


def test_contention_slows_but_preserves_results() -> None:
    """Sanity anchor for the sweep: two jobs sharing the link each run
    slower than alone, and fair sharing keeps the slowdown bounded by
    ~the contender count (fluid model, equal weights)."""
    alone = reference(lone_job("round_robin"), BANDWIDTH)
    jobs = [
        JobSpec(name="x", tenant="tx", model=MODEL, strategy="p3",
                n_workers=4, iterations=6, warmup=2),
        JobSpec(name="y", tenant="ty", model=MODEL, strategy="p3",
                n_workers=4, iterations=6, warmup=2),
    ]
    res = run_multi_job(jobs, TenancyConfig(
        n_slots=8, bandwidth_gbps=BANDWIDTH, policy="equal"), monitor=True)
    for name in ("x", "y"):
        mean = float(res.jobs[name].iteration_times().mean())
        assert mean > alone.mean_iteration_time          # contention bites
        assert mean < 2.5 * alone.mean_iteration_time    # but fairly
    # Symmetric jobs, equal shares: identical iteration profiles.
    assert np.array_equal(res.jobs["x"].iteration_times(),
                          res.jobs["y"].iteration_times())


def test_monitor_detects_cross_job_delivery() -> None:
    """Non-vacuity for the cross-job ledger: hand one job's in-flight
    message to the other job's deliver endpoint and the monitor must
    flag the boundary crossing (key/machine ids are job-local and
    numerically identical across jobs, so only identity tracking can
    catch this)."""
    from repro.sim.engine import Simulator
    from repro.sim.invariants import (
        InvariantViolation,
        MultiJobInvariantMonitor,
    )

    sim = Simulator()
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=1.0,
                        agg_group_size=2, seed=0)
    model, strat = get_model(MODEL), get_strategy("p3")
    from repro.sim import ClusterSim
    a = ClusterSim(model, strat, cfg, sim=sim, link_cancellable=True)
    b = ClusterSim(model, strat, cfg, sim=sim, link_cancellable=True)
    mon = MultiJobInvariantMonitor(sim)
    mon.attach("a", a)
    mon.attach("b", b)
    a.start_run(2, warmup=1)
    b.start_run(2, warmup=1)
    sim.run()
    mon.assert_all_final()  # the clean run holds every invariant

    stray = next(m for m in mon._refs if mon._owner[id(m)] == "a")
    machine = next(iter(b.transport._deliver))
    with pytest.raises(InvariantViolation, match="crossed a job boundary"):
        b.transport._deliver[machine](stray)
    assert mon.crossings == 1
