"""Unit tests for strategy configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.placement import PlacedKey
from repro.models import toy_model, vgg19
from repro.strategies import (
    STRATEGY_FACTORIES,
    PullPolicy,
    StrategyConfig,
    asgd,
    baseline,
    dgc_timing,
    get_strategy,
    p3,
    p3_with_policy,
    poseidon_wfbp,
    priority_only,
    slicing_only,
    tensorflow_style,
)


def test_baseline_characteristics():
    s = baseline()
    assert s.slice_params is None
    assert not s.prioritized
    assert s.pull_policy is PullPolicy.NOTIFY_PULL
    assert s.queue_discipline == "fifo"
    assert not s.async_updates


def test_p3_characteristics():
    s = p3()
    assert s.slice_params == 50_000
    assert s.prioritized
    assert s.pull_policy is PullPolicy.BROADCAST
    assert s.queue_discipline == "priority"


def test_slicing_only_characteristics():
    s = slicing_only(slice_params=10_000)
    assert s.slice_params == 10_000
    assert not s.prioritized
    assert s.pull_policy is PullPolicy.BROADCAST


def test_tensorflow_defers_pull():
    assert tensorflow_style().pull_policy is PullPolicy.DEFERRED_PULL


def test_asgd_is_async():
    assert asgd().async_updates


def test_poseidon_is_layerwise_fifo():
    s = poseidon_wfbp()
    assert s.slice_params is None and not s.prioritized


def test_dgc_timing_scales_payloads():
    s = dgc_timing(density=0.001)
    assert s.gradient_scale == pytest.approx(0.002)
    assert s.param_scale == pytest.approx(0.002)
    with pytest.raises(ValueError):
        dgc_timing(density=0.9)


def test_priority_only_keeps_layer_granularity():
    s = priority_only()
    assert s.slice_params is None and s.prioritized


def test_p3_with_policy():
    s = p3_with_policy("reverse")
    assert s.priority_policy == "reverse"
    assert s.name == "p3_reverse"


def test_with_slice_copies():
    s = p3().with_slice(1_000)
    assert s.slice_params == 1_000
    assert p3().slice_params == 50_000  # original untouched


def test_validation():
    with pytest.raises(ValueError):
        StrategyConfig("bad", 0, False, PullPolicy.BROADCAST)
    with pytest.raises(ValueError):
        StrategyConfig("bad", None, False, PullPolicy.BROADCAST, gradient_scale=0.0)
    with pytest.raises(ValueError):
        StrategyConfig("bad", None, False, PullPolicy.BROADCAST, param_scale=2.0)


def test_get_strategy_factory():
    for name in STRATEGY_FACTORIES:
        assert get_strategy(name).name in (name, STRATEGY_FACTORIES[name]().name)
    with pytest.raises(KeyError):
        get_strategy("allreduce")


def test_plan_sliced_round_robin():
    rng = np.random.default_rng(0)
    placed = p3(slice_params=10_000).plan(toy_model(), 3, rng)
    assert all(isinstance(pk, PlacedKey) for pk in placed)
    assert [pk.server for pk in placed[:3]] == [0, 1, 2]
    assert sum(pk.params for pk in placed) == toy_model().total_params


def test_plan_layer_granularity_uses_kvstore():
    rng = np.random.default_rng(0)
    model = vgg19()
    placed = baseline().plan(model, 4, rng)
    # the fc6 weight (>1M params) must be split across all 4 servers
    heavy = model.heaviest_layer
    heavy_keys = [pk for pk in placed if pk.layer_index == heavy]
    assert len(heavy_keys) == 4


def test_plan_respects_priority_policy():
    rng = np.random.default_rng(0)
    placed = p3_with_policy("reverse", slice_params=10_000).plan(toy_model(), 2, rng)
    n = toy_model().n_layers
    for pk in placed:
        assert pk.priority == n - 1 - pk.layer_index
