"""CLI smoke tests (run in-process via main())."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_lists_all_figures():
    parser = build_parser()
    text = parser.format_help()
    for cmd in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                "fig11", "fig12", "fig13", "fig14", "fig15", "summary",
                "models", "live"):
        assert cmd in text


def test_live_parser_flags():
    parser = build_parser()
    args = parser.parse_args(["live", "--workers", "3", "--shards", "2",
                              "--iterations", "4", "--rate-mbps", "10"])
    assert args.workers == 3
    assert args.shards == 2
    assert args.iterations == 4
    assert args.rate_mbps == 10.0


@pytest.mark.slow
def test_live_command_runs(capsys):
    """Full live run via the CLI: forks processes, so marked slow."""
    assert main(["live", "--iterations", "3", "--warmup", "1"]) == 0
    out = capsys.readouterr().out
    assert "bit-identical" in out
    assert "speedup" in out


def test_models_command(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "vgg19" in out and "sockeye" in out


def test_fig4_command(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "p3" in out


def test_fig5_command_with_csv(tmp_path, capsys):
    csv_path = tmp_path / "fig5.csv"
    assert main(["fig5", "--csv", str(csv_path)]) == 0
    assert csv_path.exists()
    assert "71.5%" in capsys.readouterr().out


def test_fig6_command(capsys):
    assert main(["fig6"]) == 0
    assert "slicing reduces" in capsys.readouterr().out


def test_bounds_command(capsys):
    assert main(["bounds", "--model", "resnet50"]) == 0
    out = capsys.readouterr().out
    assert "5.98 Gbps" in out and "3.99 Gbps" in out


def test_allreduce_command(capsys):
    assert main(["allreduce", "--model", "resnet50", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "allreduce_fifo" in out and "allreduce_p3" in out


def test_trace_command(tmp_path, capsys):
    out_path = tmp_path / "t.json"
    assert main(["trace", "--model", "resnet50", "--iterations", "3",
                 "--out", str(out_path)]) == 0
    assert out_path.exists()


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_model_rejected():
    with pytest.raises(SystemExit):
        main(["fig7", "--model", "lenet5"])
