"""Tests for the data-parallel harness and its sync rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training import (
    DGCConfig,
    TrainConfig,
    make_dataset,
    mlp,
    train_data_parallel,
)
from repro.training.data import SyntheticSpec


def _tiny_dataset(seed=0, n=128):
    spec = SyntheticSpec(n_classes=4, image_size=8, channels=1, noise=1.0)
    return make_dataset(n_train=n, n_val=64, spec=spec, seed=seed)


def _net(seed=0, in_dim=64):
    return mlp(np.random.default_rng(seed), in_dim=in_dim, hidden=16, n_classes=4)


def test_config_validation():
    with pytest.raises(ValueError):
        TrainConfig(n_workers=0)
    with pytest.raises(ValueError):
        TrainConfig(n_workers=3, batch_size=64)  # not divisible
    with pytest.raises(ValueError):
        TrainConfig(epochs=0)


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        train_data_parallel(_net(), _tiny_dataset(),
                            TrainConfig(epochs=1, batch_size=32), method="p4")


def test_exact_sync_equals_single_worker_sgd():
    """The core P3 claim (Section 5.6): synchronizing full gradients is
    *exactly* synchronous SGD — W workers on shards match 1 worker on the
    full batch.  (Requires a batch-norm-free net: BN statistics are
    per-shard on real clusters too.)"""
    ds = _tiny_dataset()
    cfg4 = TrainConfig(n_workers=4, epochs=2, batch_size=32, lr=0.05, seed=7)
    cfg1 = TrainConfig(n_workers=1, epochs=2, batch_size=32, lr=0.05, seed=7)

    def _bn_free(seed):
        return mlp(np.random.default_rng(seed), in_dim=64, hidden=16,
                   n_classes=4, batchnorm=False)

    net_a, net_b = _bn_free(3), _bn_free(3)
    res_a = train_data_parallel(net_a, ds, cfg4, method="exact")
    res_b = train_data_parallel(net_b, ds, cfg1, method="exact")
    np.testing.assert_allclose(net_a.get_vector(), net_b.get_vector(),
                               rtol=1e-8, atol=1e-10)
    np.testing.assert_allclose(res_a.val_accuracy, res_b.val_accuracy)


def test_training_is_deterministic():
    ds = _tiny_dataset()
    cfg = TrainConfig(n_workers=2, epochs=2, batch_size=32, seed=5)
    a = train_data_parallel(_net(1), ds, cfg, method="exact")
    b = train_data_parallel(_net(1), ds, cfg, method="exact")
    np.testing.assert_array_equal(a.val_accuracy, b.val_accuracy)
    np.testing.assert_array_equal(a.train_loss, b.train_loss)


def test_exact_training_learns():
    ds = _tiny_dataset(n=256)
    cfg = TrainConfig(n_workers=4, epochs=6, batch_size=32, lr=0.05, seed=2)
    res = train_data_parallel(_net(2), ds, cfg, method="exact")
    assert res.final_accuracy > 0.7
    assert res.train_loss[-1] < res.train_loss[0]


def test_dgc_training_learns():
    ds = _tiny_dataset(n=256)
    cfg = TrainConfig(n_workers=4, epochs=6, batch_size=32, lr=0.05, seed=2)
    res = train_data_parallel(_net(2), ds, cfg, method="dgc",
                              dgc_config=DGCConfig(density=0.1, clip_norm=0.0,
                                                   warmup_epochs=2,
                                                   warmup_densities=(0.25, 0.25)))
    assert res.final_accuracy > 0.5


def test_asgd_training_learns():
    ds = _tiny_dataset(n=256)
    cfg = TrainConfig(n_workers=4, epochs=6, batch_size=32, lr=0.05, seed=2)
    res = train_data_parallel(_net(2), ds, cfg, method="asgd")
    assert res.final_accuracy > 0.5


def test_dgc_full_density_matches_exact_when_unclipped():
    """density=1 with no clipping and no momentum shift is plain sync SGD
    (server applies the summed mean; worker momentum==optimizer momentum
    must both be off for exact equality)."""
    ds = _tiny_dataset()
    cfg = TrainConfig(n_workers=2, epochs=1, batch_size=32, lr=0.05,
                      momentum=0.0, weight_decay=0.0, seed=9)
    dgc_cfg = DGCConfig(density=1.0, momentum=0.0, clip_norm=0.0,
                        warmup_epochs=0, warmup_densities=())
    net_a, net_b = _net(4), _net(4)
    train_data_parallel(net_a, ds, cfg, method="exact")
    train_data_parallel(net_b, ds, cfg, method="dgc", dgc_config=dgc_cfg)
    np.testing.assert_allclose(net_a.get_vector(), net_b.get_vector(),
                               rtol=1e-8, atol=1e-10)


def test_result_metadata():
    ds = _tiny_dataset()
    cfg = TrainConfig(n_workers=2, epochs=3, batch_size=32, seed=1)
    res = train_data_parallel(_net(1), ds, cfg, method="exact")
    assert res.method == "exact"
    assert len(res.val_accuracy) == 3
    assert res.steps_per_epoch == 128 // 32
    assert 0 <= res.final_accuracy <= 1
    assert res.best_accuracy >= res.final_accuracy - 1e-12


def test_epochs_to_accuracy():
    ds = _tiny_dataset(n=256)
    cfg = TrainConfig(n_workers=2, epochs=5, batch_size=32, lr=0.05, seed=2)
    res = train_data_parallel(_net(2), ds, cfg, method="exact")
    hit = res.epochs_to_accuracy(0.5)
    assert hit is None or 1 <= hit <= 5
    assert res.epochs_to_accuracy(1.01) is None


def test_epoch_callback_invoked():
    ds = _tiny_dataset()
    seen = []
    cfg = TrainConfig(n_workers=2, epochs=2, batch_size=32, seed=1)
    train_data_parallel(_net(1), ds, cfg, method="exact",
                        epoch_callback=lambda e, acc, loss: seen.append(e))
    assert seen == [0, 1]


def test_localsgd_training_learns():
    ds = _tiny_dataset(n=256)
    cfg = TrainConfig(n_workers=4, epochs=6, batch_size=32, lr=0.05, seed=2,
                      local_sgd_steps=4)
    res = train_data_parallel(_net(2), ds, cfg, method="localsgd")
    assert res.final_accuracy > 0.5


def test_localsgd_period_one_close_to_exact():
    """Averaging after every step is synchronous SGD up to the order of
    momentum application; trajectories should track closely."""
    ds = _tiny_dataset()
    cfg = TrainConfig(n_workers=2, epochs=2, batch_size=32, lr=0.05,
                      momentum=0.0, weight_decay=0.0, seed=9, local_sgd_steps=1)

    def _bn_free(seed):
        return mlp(np.random.default_rng(seed), in_dim=64, hidden=16,
                   n_classes=4, batchnorm=False)

    net_a, net_b = _bn_free(4), _bn_free(4)
    train_data_parallel(net_a, ds, cfg, method="exact")
    train_data_parallel(net_b, ds, cfg, method="localsgd")
    np.testing.assert_allclose(net_a.get_vector(), net_b.get_vector(),
                               rtol=1e-8, atol=1e-10)


def test_localsgd_config_validation():
    with pytest.raises(ValueError):
        TrainConfig(local_sgd_steps=0)


def test_asgd_differs_from_exact():
    """Staleness must change the trajectory (otherwise it's not async)."""
    ds = _tiny_dataset()
    cfg = TrainConfig(n_workers=4, epochs=2, batch_size=32, lr=0.05, seed=3)
    net_a, net_b = _net(6), _net(6)
    train_data_parallel(net_a, ds, cfg, method="exact")
    train_data_parallel(net_b, ds, cfg, method="asgd")
    assert not np.allclose(net_a.get_vector(), net_b.get_vector())
