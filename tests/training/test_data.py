"""Unit tests for the synthetic dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training.data import Dataset, SyntheticSpec, make_dataset


def test_shapes_and_dtypes():
    ds = make_dataset(n_train=64, n_val=16, seed=0)
    spec = SyntheticSpec()
    assert ds.x_train.shape == (64, spec.channels, spec.image_size, spec.image_size)
    assert ds.x_val.shape == (16, spec.channels, spec.image_size, spec.image_size)
    assert ds.y_train.shape == (64,)
    assert ds.n_train == 64 and ds.n_val == 16


def test_labels_in_range():
    ds = make_dataset(n_train=200, n_val=50, seed=1)
    assert ds.y_train.min() >= 0
    assert ds.y_train.max() < SyntheticSpec().n_classes


def test_deterministic_by_seed():
    a = make_dataset(n_train=32, n_val=8, seed=42)
    b = make_dataset(n_train=32, n_val=8, seed=42)
    np.testing.assert_array_equal(a.x_train, b.x_train)
    np.testing.assert_array_equal(a.y_val, b.y_val)


def test_different_seeds_differ():
    a = make_dataset(n_train=32, n_val=8, seed=1)
    b = make_dataset(n_train=32, n_val=8, seed=2)
    assert not np.array_equal(a.x_train, b.x_train)


def test_all_classes_present():
    ds = make_dataset(n_train=500, n_val=100, seed=3)
    assert len(np.unique(ds.y_train)) == SyntheticSpec().n_classes


def test_noise_controls_difficulty():
    """Same-class samples correlate more under low noise."""
    def intra_class_corr(noise):
        spec = SyntheticSpec(noise=noise, max_shift=0)
        ds = make_dataset(n_train=300, n_val=10, spec=spec, seed=0)
        cors = []
        for c in range(3):
            xs = ds.x_train[ds.y_train == c].reshape(-1, spec.channels * 256)
            if len(xs) < 2:
                continue
            cors.append(np.corrcoef(xs[0], xs[1])[0, 1])
        return np.mean(cors)

    assert intra_class_corr(0.5) > intra_class_corr(5.0)


def test_custom_spec_respected():
    spec = SyntheticSpec(n_classes=3, image_size=8, channels=1)
    ds = make_dataset(n_train=30, n_val=10, spec=spec, seed=0)
    assert ds.x_train.shape == (30, 1, 8, 8)
    assert ds.y_train.max() < 3


def test_signal_is_learnable_at_default_noise():
    """Nearest-prototype classification must beat chance on val data —
    otherwise every convergence experiment is meaningless."""
    ds = make_dataset(n_train=2000, n_val=400, seed=0)
    # Estimate prototypes from training means.
    classes = np.unique(ds.y_train)
    protos = np.stack([ds.x_train[ds.y_train == c].mean(axis=0) for c in classes])
    flat_val = ds.x_val.reshape(len(ds.x_val), -1)
    flat_protos = protos.reshape(len(classes), -1)
    preds = np.argmax(flat_val @ flat_protos.T, axis=1)
    acc = (classes[preds] == ds.y_val).mean()
    assert acc > 0.5  # far above 10% chance
