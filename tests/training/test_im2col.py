"""im2col/col2im correctness against naive implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training.im2col import col2im, conv_out_size, im2col


def naive_conv(x, w, stride, pad):
    """Direct-loop convolution as the gold standard."""
    n, c, h, wd = x.shape
    cout, _, k, _ = w.shape
    oh, ow = conv_out_size(h, wd, k, stride, pad)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((n, cout, oh, ow))
    for i in range(oh):
        for j in range(ow):
            patch = xp[:, :, i * stride:i * stride + k, j * stride:j * stride + k]
            out[:, :, i, j] = np.einsum("nchw,ochw->no", patch, w)
    return out


def test_conv_out_size():
    assert conv_out_size(8, 8, 3, 1, 1) == (8, 8)
    assert conv_out_size(8, 8, 3, 2, 1) == (4, 4)
    assert conv_out_size(7, 7, 1, 1, 0) == (7, 7)
    with pytest.raises(ValueError):
        conv_out_size(2, 2, 5, 1, 0)


@pytest.mark.parametrize("stride,pad,k", [(1, 1, 3), (2, 1, 3), (1, 0, 1), (2, 2, 5)])
def test_im2col_conv_matches_naive(stride, pad, k):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 3, 8, 8))
    w = rng.normal(size=(4, 3, k, k))
    oh, ow = conv_out_size(8, 8, k, stride, pad)
    cols = im2col(x, k, stride, pad)
    out = (cols @ w.reshape(4, -1).T).reshape(2, oh, ow, 4).transpose(0, 3, 1, 2)
    np.testing.assert_allclose(out, naive_conv(x, w, stride, pad), atol=1e-10)


def test_col2im_is_adjoint_of_im2col():
    """<im2col(x), c> == <x, col2im(c)> — the defining adjoint property,
    which is exactly what correct backprop through im2col requires."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(2, 3, 6, 6))
    cols = im2col(x, 3, 2, 1)
    c = rng.normal(size=cols.shape)
    lhs = float((cols * c).sum())
    rhs = float((x * col2im(c, x.shape, 3, 2, 1)).sum())
    assert lhs == pytest.approx(rhs)


@given(st.integers(min_value=1, max_value=3),
       st.integers(min_value=1, max_value=3),
       st.sampled_from([1, 3]),
       st.sampled_from([1, 2]),
       st.integers(min_value=0, max_value=1),
       st.integers(min_value=4, max_value=7))
@settings(max_examples=30, deadline=None)
def test_property_adjointness(n, c, k, stride, pad, hw):
    if (hw + 2 * pad - k) < 0:
        return
    rng = np.random.default_rng(n * 100 + c)
    x = rng.normal(size=(n, c, hw, hw))
    cols = im2col(x, k, stride, pad)
    g = rng.normal(size=cols.shape)
    lhs = float((cols * g).sum())
    rhs = float((x * col2im(g, x.shape, k, stride, pad)).sum())
    assert lhs == pytest.approx(rhs, rel=1e-9)
