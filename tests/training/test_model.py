"""Unit tests for Network and the loss head."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training import Network, SoftmaxCrossEntropy, mlp, small_cnn


def test_softmax_ce_known_value():
    loss_fn = SoftmaxCrossEntropy()
    logits = np.array([[0.0, 0.0]])
    loss = loss_fn.forward(logits, np.array([0]))
    assert loss == pytest.approx(np.log(2.0))


def test_softmax_ce_gradient_sums_to_zero():
    rng = np.random.default_rng(0)
    loss_fn = SoftmaxCrossEntropy()
    logits = rng.normal(size=(6, 5))
    loss_fn.forward(logits, rng.integers(5, size=6))
    grad = loss_fn.backward()
    np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)


def test_softmax_ce_numerically_stable():
    loss_fn = SoftmaxCrossEntropy()
    logits = np.array([[1000.0, -1000.0]])
    loss = loss_fn.forward(logits, np.array([0]))
    assert np.isfinite(loss)


def test_parameters_are_live_views(rng):
    net = mlp(rng, in_dim=8, hidden=4, n_classes=3)
    params = net.parameters()
    key = next(iter(params))
    params[key] += 1.0
    assert np.array_equal(net.parameters()[key], params[key])


def test_vector_round_trip(rng):
    net = mlp(rng, in_dim=8, hidden=4, n_classes=3)
    vec = net.get_vector()
    assert vec.size == net.n_params
    net.set_vector(vec * 2.0)
    np.testing.assert_allclose(net.get_vector(), vec * 2.0)


def test_set_vector_size_checked(rng):
    net = mlp(rng, in_dim=8, hidden=4, n_classes=3)
    with pytest.raises(ValueError):
        net.set_vector(np.zeros(net.n_params + 1))


def test_set_parameters_name_checked(rng):
    net = mlp(rng, in_dim=8, hidden=4, n_classes=3)
    with pytest.raises(KeyError):
        net.set_parameters({"bogus": np.zeros(3)})


def test_set_parameters_copies(rng):
    net = mlp(rng, in_dim=8, hidden=4, n_classes=3)
    snapshot = {k: v.copy() for k, v in net.parameters().items()}
    net.set_parameters(snapshot)
    key = next(iter(snapshot))
    snapshot[key] += 5.0
    assert not np.array_equal(net.parameters()[key], snapshot[key])


def test_loss_and_grad_fills_all_gradients(rng):
    net = small_cnn(rng, n_classes=3, in_channels=2, width=2)
    x = rng.normal(size=(4, 2, 16, 16))
    y = rng.integers(3, size=4)
    loss = net.loss_and_grad(x, y)
    assert np.isfinite(loss)
    grads = net.gradients()
    assert set(grads) == set(net.parameters())
    assert any(np.abs(g).max() > 0 for g in grads.values())


def test_predict_batches_consistently(rng):
    net = mlp(rng, in_dim=8, hidden=4, n_classes=3)
    x = rng.normal(size=(30, 8))
    full = net.predict(x, batch_size=30)
    chunked = net.predict(x, batch_size=7)
    np.testing.assert_array_equal(full, chunked)


def test_accuracy_range(rng):
    net = mlp(rng, in_dim=8, hidden=4, n_classes=3)
    x = rng.normal(size=(20, 8))
    y = rng.integers(3, size=20)
    acc = net.accuracy(x, y)
    assert 0.0 <= acc <= 1.0
