"""Numerical gradient checks and behavioural tests for every layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    ResidualBlock,
    Sequential,
)


def numerical_grad_input(layer, x, dy, eps=1e-6):
    """Central-difference d<dy, layer(x)>/dx."""
    grad = np.zeros_like(x)
    flat_x, flat_g = x.ravel(), grad.ravel()
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        up = float((layer.forward(x, train=True) * dy).sum())
        flat_x[i] = orig - eps
        down = float((layer.forward(x, train=True) * dy).sum())
        flat_x[i] = orig
        flat_g[i] = (up - down) / (2 * eps)
    return grad


def numerical_grad_param(layer, x, dy, pname, eps=1e-6):
    p = layer.params[pname]
    grad = np.zeros_like(p)
    flat_p, flat_g = p.ravel(), grad.ravel()
    for i in range(flat_p.size):
        orig = flat_p[i]
        flat_p[i] = orig + eps
        up = float((layer.forward(x, train=True) * dy).sum())
        flat_p[i] = orig - eps
        down = float((layer.forward(x, train=True) * dy).sum())
        flat_p[i] = orig
        flat_g[i] = (up - down) / (2 * eps)
    return grad


def check_layer_grads(layer, x, atol=1e-6):
    rng = np.random.default_rng(99)
    y = layer.forward(x, train=True)
    dy = rng.normal(size=y.shape)
    dx = layer.backward(dy)
    np.testing.assert_allclose(dx, numerical_grad_input(layer, x, dy), atol=atol)
    for pname in layer.params:
        np.testing.assert_allclose(
            layer.grads[pname], numerical_grad_param(layer, x, dy, pname),
            atol=atol, err_msg=pname)


def test_dense_gradients(rng):
    layer = Dense(6, 4, rng)
    check_layer_grads(layer, rng.normal(size=(3, 6)))


def test_dense_no_bias(rng):
    layer = Dense(6, 4, rng, bias=False)
    assert "b" not in layer.params
    check_layer_grads(layer, rng.normal(size=(3, 6)))


def test_conv_gradients(rng):
    layer = Conv2D(2, 3, 3, rng, bias=True)
    check_layer_grads(layer, rng.normal(size=(2, 2, 5, 5)))


def test_conv_strided_gradients(rng):
    layer = Conv2D(2, 2, 3, rng, stride=2)
    check_layer_grads(layer, rng.normal(size=(2, 2, 6, 6)))


def test_conv_channel_mismatch(rng):
    layer = Conv2D(3, 4, 3, rng)
    with pytest.raises(ValueError):
        layer.forward(np.zeros((1, 2, 8, 8)))


def test_relu_gradients(rng):
    check_layer_grads(ReLU(), rng.normal(size=(4, 7)) + 0.1)


def test_relu_masks_negative():
    y = ReLU().forward(np.array([[-1.0, 0.5]]))
    np.testing.assert_array_equal(y, [[0.0, 0.5]])


def test_batchnorm_gradients_2d(rng):
    check_layer_grads(BatchNorm(5), rng.normal(size=(8, 5)), atol=1e-5)


def test_batchnorm_gradients_4d(rng):
    check_layer_grads(BatchNorm(3), rng.normal(size=(4, 3, 2, 2)), atol=1e-5)


def test_batchnorm_normalizes_in_train():
    rng = np.random.default_rng(0)
    bn = BatchNorm(4)
    y = bn.forward(rng.normal(loc=5.0, scale=3.0, size=(256, 4)), train=True)
    assert np.abs(y.mean(axis=0)).max() < 1e-8
    assert np.abs(y.std(axis=0) - 1).max() < 1e-2


def test_batchnorm_eval_uses_running_stats():
    rng = np.random.default_rng(0)
    bn = BatchNorm(4)
    for _ in range(200):
        bn.forward(rng.normal(loc=2.0, size=(64, 4)), train=True)
    y = bn.forward(np.full((2, 4), 2.0), train=False)
    assert np.abs(y).max() < 0.2  # ~mean input maps near zero


def test_batchnorm_rejects_3d():
    with pytest.raises(ValueError):
        BatchNorm(4).forward(np.zeros((2, 4, 3)))


def test_maxpool_gradients(rng):
    check_layer_grads(MaxPool2D(2), rng.normal(size=(2, 2, 4, 4)))


def test_maxpool_forward_values():
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    y = MaxPool2D(2).forward(x)
    np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])


def test_maxpool_tie_routes_gradient_once():
    x = np.ones((1, 1, 2, 2))
    pool = MaxPool2D(2)
    pool.forward(x)
    dx = pool.backward(np.array([[[[4.0]]]]))
    assert dx.sum() == pytest.approx(4.0)
    assert (dx > 0).sum() == 1  # ties broken to a single element


def test_maxpool_requires_divisible_dims():
    with pytest.raises(ValueError):
        MaxPool2D(2).forward(np.zeros((1, 1, 5, 4)))


def test_global_avg_pool_gradients(rng):
    check_layer_grads(GlobalAvgPool(), rng.normal(size=(2, 3, 4, 4)))


def test_flatten_round_trip(rng):
    f = Flatten()
    x = rng.normal(size=(2, 3, 4, 4))
    y = f.forward(x)
    assert y.shape == (2, 48)
    np.testing.assert_array_equal(f.backward(y), x)


def test_residual_block_gradients(rng):
    block = ResidualBlock(2, 3, rng, stride=2)
    check_layer_grads(block, rng.normal(size=(2, 2, 4, 4)), atol=1e-5)


def test_residual_block_identity_skip(rng):
    block = ResidualBlock(3, 3, rng, stride=1)
    assert block.proj is None
    check_layer_grads(block, rng.normal(size=(2, 3, 4, 4)), atol=1e-5)


def test_sequential_composes(rng):
    seq = Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 2, rng)])
    check_layer_grads(seq, rng.normal(size=(3, 4)))
    names = [n for n, _ in seq.named_layers()]
    assert names == ["0", "1", "2"]


def test_sequential_nested_naming(rng):
    inner = Sequential([Dense(4, 4, rng)])
    outer = Sequential([inner, ResidualBlock(2, 2, rng)])
    names = [n for n, _ in outer.named_layers()]
    assert "0.0" in names
    assert any(n.startswith("1.conv1") for n in names)


def test_n_params(rng):
    layer = Dense(10, 5, rng)
    assert layer.n_params == 55
