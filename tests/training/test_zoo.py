"""Tests for the trainable model builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training import mini_resnet, mlp, small_cnn


def test_small_cnn_shapes(rng):
    net = small_cnn(rng, n_classes=10, in_channels=3, width=8)
    x = rng.normal(size=(4, 3, 16, 16))
    logits = net.body.forward(x, train=True)
    assert logits.shape == (4, 10)


def test_mini_resnet_shapes(rng):
    net = mini_resnet(rng, n_classes=10, widths=(4, 8, 16), blocks_per_stage=1)
    x = rng.normal(size=(2, 3, 16, 16))
    logits = net.body.forward(x, train=True)
    assert logits.shape == (2, 10)


def test_mini_resnet_backward_runs(rng):
    net = mini_resnet(rng, widths=(4, 8, 16))
    x = rng.normal(size=(2, 3, 16, 16))
    y = rng.integers(10, size=2)
    loss = net.loss_and_grad(x, y)
    assert np.isfinite(loss)
    assert all(np.isfinite(g).all() for g in net.gradients().values())


def test_mini_resnet_deeper(rng):
    shallow = mini_resnet(rng, blocks_per_stage=1)
    deep = mini_resnet(np.random.default_rng(1), blocks_per_stage=2)
    assert deep.n_params > shallow.n_params


def test_mlp_depth_and_bn(rng):
    with_bn = mlp(rng, in_dim=10, hidden=8, depth=3)
    without = mlp(np.random.default_rng(1), in_dim=10, hidden=8, depth=3,
                  batchnorm=False)
    assert with_bn.n_params > without.n_params
    x = rng.normal(size=(5, 10))
    assert without.body.forward(x).shape == (5, 10)


def test_builders_deterministic_by_rng():
    a = small_cnn(np.random.default_rng(7))
    b = small_cnn(np.random.default_rng(7))
    np.testing.assert_array_equal(a.get_vector(), b.get_vector())


def test_mini_resnet_learns_a_little():
    """A few steps of training must reduce the loss (end-to-end check of
    the residual-network backward pass)."""
    rng = np.random.default_rng(0)
    net = mini_resnet(rng, widths=(4, 8, 16))
    x = rng.normal(size=(32, 3, 16, 16))
    y = rng.integers(10, size=32)
    from repro.training import SGD
    opt = SGD(lr=0.05, momentum=0.9)
    losses = []
    for _ in range(12):
        losses.append(net.loss_and_grad(x, y))
        opt.step(net.parameters(), net.gradients())
    assert losses[-1] < losses[0] * 0.8
