"""Unit and property tests for the DGC compressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training.dgc import (
    DGCCompressor,
    DGCConfig,
    aggregate_sparse,
    compression_ratio,
)


def _compressor(density=0.5, momentum=0.0, clip=0.0):
    cfg = DGCConfig(density=density, momentum=momentum, clip_norm=clip,
                    warmup_epochs=0, warmup_densities=())
    return DGCCompressor(cfg)


def test_config_validation():
    with pytest.raises(ValueError):
        DGCConfig(density=0.0)
    with pytest.raises(ValueError):
        DGCConfig(density=1.5)
    with pytest.raises(ValueError):
        DGCConfig(warmup_epochs=3, warmup_densities=(0.25,))


def test_warmup_density_schedule():
    cfg = DGCConfig(density=0.001, warmup_epochs=2, warmup_densities=(0.25, 0.06))
    assert cfg.density_at(0) == 0.25
    assert cfg.density_at(1) == 0.06
    assert cfg.density_at(2) == 0.001


def test_topk_selects_largest_magnitudes():
    comp = _compressor(density=0.5)
    grads = {"w": np.array([0.1, -5.0, 0.2, 3.0])}
    out = comp.compress(grads, density=0.5)
    idx, values = out["w"]
    assert set(idx) == {1, 3}
    assert set(np.round(values, 6)) == {-5.0, 3.0}


def test_transmitted_coordinates_zeroed_residual_kept():
    comp = _compressor(density=0.5)
    comp.compress({"w": np.array([1.0, 10.0])}, density=0.5)
    # 10.0 was sent; 1.0 accumulates locally.
    np.testing.assert_allclose(comp.residual["w"], [1.0, 0.0])
    out = comp.compress({"w": np.array([1.0, 0.0])}, density=0.5)
    idx, values = out["w"]
    # accumulated 1+1=2 at index 0 now dominates
    assert list(idx) == [0]
    np.testing.assert_allclose(values, [2.0])


def test_momentum_correction_accumulates_velocity():
    comp = _compressor(density=1.0, momentum=0.5)
    out1 = comp.compress({"w": np.array([1.0])}, density=1.0)
    np.testing.assert_allclose(out1["w"][1], [1.0])
    out2 = comp.compress({"w": np.array([1.0])}, density=1.0)
    # full density -> momentum masked every step -> velocity restarts
    np.testing.assert_allclose(out2["w"][1], [1.0])


def test_momentum_factor_masking_zeroes_sent_velocity():
    comp = _compressor(density=0.5, momentum=0.9)
    comp.compress({"w": np.array([10.0, 1.0])}, density=0.5)
    np.testing.assert_allclose(comp.velocity["w"], [0.0, 1.0])


def test_gradient_clipping_bounds_norm():
    comp = _compressor(density=1.0, clip=1.0)
    out = comp.compress({"w": np.array([3.0, 4.0])}, density=1.0)
    values = out["w"][1]
    assert np.linalg.norm(values) == pytest.approx(1.0)


def test_density_one_sends_everything():
    comp = _compressor(density=1.0)
    g = np.array([0.5, -0.25, 0.0])
    out = comp.compress({"w": g}, density=1.0)
    idx, values = out["w"]
    assert len(idx) == 3
    np.testing.assert_allclose(comp.residual["w"], 0.0)


def test_invalid_density_rejected():
    comp = _compressor()
    with pytest.raises(ValueError):
        comp.compress({"w": np.zeros(4)}, density=0.0)


def test_aggregate_sparse_sums_across_workers():
    shapes = {"w": (4,)}
    a = {"w": (np.array([0, 2]), np.array([1.0, 2.0]))}
    b = {"w": (np.array([2, 3]), np.array([3.0, 4.0]))}
    dense = aggregate_sparse([a, b], shapes)
    np.testing.assert_allclose(dense["w"], [1.0, 0.0, 5.0, 4.0])


def test_aggregate_sparse_duplicate_indices_within_worker():
    shapes = {"w": (2,)}
    a = {"w": (np.array([0, 0]), np.array([1.0, 2.0]))}
    dense = aggregate_sparse([a], shapes)
    np.testing.assert_allclose(dense["w"], [3.0, 0.0])


def test_aggregate_sparse_reshapes():
    shapes = {"w": (2, 2)}
    a = {"w": (np.array([3]), np.array([7.0]))}
    dense = aggregate_sparse([a], shapes)
    assert dense["w"].shape == (2, 2)
    assert dense["w"][1, 1] == 7.0


def test_compression_ratio():
    sparse = {"w": (np.arange(5), np.zeros(5))}
    # 5 values + 5 indices transmitted for a 1000-param model
    assert compression_ratio(sparse, 1000) == pytest.approx(100.0)


def test_residual_norm_diagnostic():
    comp = _compressor(density=0.5)
    assert comp.residual_norm == 0.0
    comp.compress({"w": np.array([1.0, 10.0])}, density=0.5)
    assert comp.residual_norm == pytest.approx(1.0)


@given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                min_size=1, max_size=50),
       st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_property_no_gradient_mass_lost(values, density):
    """sent + residual == accumulated gradient, exactly (no momentum)."""
    g = np.array(values)
    comp = _compressor(density=density)
    out = comp.compress({"w": g.copy()}, density=density)
    idx, sent = out["w"]
    reconstructed = comp.residual["w"].copy()
    reconstructed[idx] += sent
    np.testing.assert_allclose(reconstructed, g, atol=1e-12)


@given(st.integers(min_value=1, max_value=200),
       st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_property_k_matches_density(n, density):
    rng = np.random.default_rng(n)
    comp = _compressor(density=density)
    out = comp.compress({"w": rng.normal(size=n)}, density=density)
    idx, _ = out["w"]
    expected_k = max(1, int(np.ceil(n * density)))
    assert len(idx) == expected_k
