"""Unit tests for SGD and LR schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training.optim import SGD, StepSchedule


def test_vanilla_sgd_step():
    opt = SGD(lr=0.1, momentum=0.0)
    params = {"w": np.array([1.0, 2.0])}
    opt.step(params, {"w": np.array([1.0, -1.0])})
    np.testing.assert_allclose(params["w"], [0.9, 2.1])


def test_momentum_accumulates():
    opt = SGD(lr=1.0, momentum=0.5)
    params = {"w": np.array([0.0])}
    g = {"w": np.array([1.0])}
    opt.step(params, g)   # v=1, w=-1
    opt.step(params, g)   # v=1.5, w=-2.5
    np.testing.assert_allclose(params["w"], [-2.5])


def test_weight_decay_pulls_to_zero():
    opt = SGD(lr=0.1, momentum=0.0, weight_decay=0.5)
    params = {"w": np.array([2.0])}
    opt.step(params, {"w": np.array([0.0])})
    np.testing.assert_allclose(params["w"], [1.9])


def test_reset_clears_velocity():
    opt = SGD(lr=1.0, momentum=0.9)
    params = {"w": np.array([0.0])}
    opt.step(params, {"w": np.array([1.0])})
    opt.reset()
    params = {"w": np.array([0.0])}
    opt.step(params, {"w": np.array([1.0])})
    np.testing.assert_allclose(params["w"], [-1.0])  # no momentum carry-over


def test_validation():
    with pytest.raises(ValueError):
        SGD(lr=0.0)
    with pytest.raises(ValueError):
        SGD(lr=0.1, momentum=1.0)


def test_step_schedule():
    sched = StepSchedule(base_lr=1.0, milestones=(0.5, 0.75), gamma=0.1)
    assert sched.lr_at(0, 100) == pytest.approx(1.0)
    assert sched.lr_at(49, 100) == pytest.approx(1.0)
    assert sched.lr_at(50, 100) == pytest.approx(0.1)
    assert sched.lr_at(75, 100) == pytest.approx(0.01)


def test_in_place_update_preserves_identity():
    opt = SGD(lr=0.1, momentum=0.9)
    w = np.array([1.0])
    params = {"w": w}
    opt.step(params, {"w": np.array([1.0])})
    assert params["w"] is w  # updated in place, not rebound
