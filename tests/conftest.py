"""Shared fixtures: fast models and cluster configs for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import toy_model
from repro.models.base import LayerSpec, ModelSpec
from repro.sim import ClusterConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_model() -> ModelSpec:
    """Four small layers, fast to simulate (sub-millisecond iterations)."""
    return ModelSpec(
        name="tiny4",
        layers=(
            LayerSpec("l0", 10_000, 1.0),
            LayerSpec("l1", 40_000, 2.0),
            LayerSpec("l2", 120_000, 3.0),
            LayerSpec("l3", 20_000, 1.0),
        ),
        batch_size=16,
        samples_per_sec=400.0,
    )


@pytest.fixture
def skewed_model() -> ModelSpec:
    """VGG-like skew: one array dominating the byte count."""
    return ModelSpec(
        name="skewed",
        layers=(
            LayerSpec("conv1", 5_000, 4.0),
            LayerSpec("conv2", 20_000, 4.0),
            LayerSpec("fc_big", 2_000_000, 2.0),
            LayerSpec("fc_out", 10_000, 1.0),
        ),
        batch_size=16,
        samples_per_sec=200.0,
    )


@pytest.fixture
def toy3():
    return toy_model()


@pytest.fixture
def fast_cluster() -> ClusterConfig:
    """Four machines on a bandwidth low enough that scheduling matters."""
    return ClusterConfig(n_workers=4, bandwidth_gbps=1.0, seed=0)
