"""Property-based integration tests: simulator invariants must hold for
*arbitrary* models and strategies, not just the zoo."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.base import LayerSpec, ModelSpec
from repro.sim import ClusterConfig, ClusterSim
from repro.strategies import STRATEGY_FACTORIES, get_strategy

model_st = st.builds(
    lambda sizes, batch, sps: ModelSpec(
        name="rand",
        layers=tuple(LayerSpec(f"l{i}", s, float(s)) for i, s in enumerate(sizes)),
        batch_size=batch,
        samples_per_sec=float(sps),
    ),
    sizes=st.lists(st.integers(min_value=100, max_value=400_000),
                   min_size=1, max_size=8),
    batch=st.integers(min_value=1, max_value=64),
    sps=st.integers(min_value=10, max_value=2000),
)


@given(model=model_st,
       strategy_name=st.sampled_from(sorted(STRATEGY_FACTORIES)),
       n_workers=st.integers(min_value=1, max_value=5),
       bandwidth=st.sampled_from([0.3, 1.0, 8.0]),
       seed=st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_property_simulation_invariants(model, strategy_name, n_workers,
                                        bandwidth, seed):
    """For any model x strategy x cluster:
    1. the simulation terminates (no protocol deadlock);
    2. iteration time >= pure compute time;
    3. throughput <= compute bound;
    4. every key updates exactly once per worker-iteration round."""
    strategy = get_strategy(strategy_name)
    cfg = ClusterConfig(n_workers=n_workers, bandwidth_gbps=bandwidth, seed=seed)
    sim = ClusterSim(model, strategy, cfg)
    iterations = 3
    result = sim.run(iterations=iterations, warmup=1)

    assert result.throughput > 0
    compute = model.iteration_compute_time()
    assert result.mean_iteration_time >= compute * 0.999
    bound = n_workers * model.batch_size / compute
    assert result.throughput <= bound * 1.001

    updates = sum(s.updates_done for s in sim.servers)
    if strategy.async_updates:
        # one update per push: keys x workers x iterations
        assert updates == len(sim.placed) * n_workers * iterations
    else:
        assert updates == len(sim.placed) * iterations


@given(model=model_st,
       n_workers=st.integers(min_value=2, max_value=4),
       seed=st.integers(min_value=0, max_value=3))
@settings(max_examples=25, deadline=None)
def test_property_p3_not_slower_than_baseline(model, n_workers, seed):
    """P3 may tie but should not lose materially to the baseline on any
    model (allowing 3% numerical slack for tiny-key edge cases)."""
    cfg = ClusterConfig(n_workers=n_workers, bandwidth_gbps=0.5, seed=seed)
    base = ClusterSim(model, get_strategy("baseline"), cfg).run(3, warmup=1)
    fast = ClusterSim(model, get_strategy("p3"), cfg).run(3, warmup=1)
    assert fast.throughput >= 0.97 * base.throughput


@given(model=model_st, seed=st.integers(min_value=0, max_value=5))
@settings(max_examples=25, deadline=None)
def test_property_determinism_for_random_models(model, seed):
    cfg = ClusterConfig(n_workers=3, bandwidth_gbps=1.0, seed=seed)
    a = ClusterSim(model, get_strategy("p3"), cfg).run(3, warmup=1)
    b = ClusterSim(model, get_strategy("p3"), cfg).run(3, warmup=1)
    assert np.array_equal(a.iteration_times, b.iteration_times)
