"""End-to-end checks of the paper's qualitative claims.

Each test states a claim from the paper and verifies the reproduction
exhibits it (on settings small enough for CI).  These are the invariants
EXPERIMENTS.md reports quantitatively at full scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import resnet50, sockeye, vgg19
from repro.sim import ClusterConfig, simulate
from repro.strategies import baseline, p3, slicing_only


@pytest.fixture(scope="module")
def cfg4():
    return lambda bw: ClusterConfig(n_workers=4, bandwidth_gbps=bw, seed=0)


def _tput(model, strategy, bw, iters=4):
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=bw, seed=0)
    return simulate(model, strategy, cfg, iterations=iters, warmup=1).throughput / 4


def test_claim_p3_beats_baseline_under_limited_bandwidth():
    """Abstract: P3 improves ResNet-50 throughput by as much as 25%."""
    model = resnet50()
    base = _tput(model, baseline(), 4.0)
    fast = _tput(model, p3(), 4.0)
    assert fast / base > 1.15


def test_claim_vgg_gains_most():
    """Abstract: VGG-19 improves by as much as 66% (at 15 Gbps)."""
    model = vgg19()
    base = _tput(model, baseline(), 15.0)
    fast = _tput(model, p3(), 15.0)
    assert fast / base > 1.4


def test_claim_sockeye_gains_despite_heavy_first_layer():
    """Section 5.3: Sockeye improves up to 38% even though its heaviest
    layer is the initial one."""
    model = sockeye()
    base = _tput(model, baseline(), 4.0)
    fast = _tput(model, p3(), 4.0)
    assert fast / base > 1.1


def test_claim_slicing_alone_helps_heavy_models_only():
    """Section 5.3: ResNet-50/InceptionV3 do not benefit from slicing
    alone (small layers), VGG-19 does (one huge layer)."""
    resnet_gain = _tput(resnet50(), slicing_only(), 5.0) / _tput(resnet50(), baseline(), 5.0)
    vgg_gain = _tput(vgg19(), slicing_only(), 15.0) / _tput(vgg19(), baseline(), 15.0)
    assert vgg_gain > 1.3
    assert resnet_gain < 1.15
    assert vgg_gain > resnet_gain


def test_claim_speedup_shrinks_at_both_bandwidth_extremes():
    """Section 5.3: gains diminish when bandwidth is ample (compute
    bound) and when it is scarce (communication dominates everything)."""
    model = resnet50()
    gains = {}
    for bw in (0.5, 4.0, 10.0):
        gains[bw] = _tput(model, p3(), bw) / _tput(model, baseline(), bw)
    assert gains[4.0] > gains[10.0] - 0.02
    # at 10 Gbps both are compute-bound: near parity
    assert gains[10.0] == pytest.approx(1.0, abs=0.05)


def test_claim_baseline_crossover_near_6gbps_resnet():
    """Section 5.3: baseline ResNet-50 throughput starts dropping below
    ~6 Gbps while P3 holds until ~4 Gbps."""
    model = resnet50()
    compute_bound = model.samples_per_sec
    base_6 = _tput(model, baseline(), 6.0)
    base_3 = _tput(model, baseline(), 3.0)
    p3_4 = _tput(model, p3(), 4.0)
    assert base_6 > 0.90 * compute_bound   # still near plateau at 6
    assert base_3 < 0.80 * compute_bound   # clearly degraded at 3
    assert p3_4 > 0.93 * compute_bound     # P3 holds at 4


def test_claim_p3_reduces_peak_bandwidth():
    """Section 5.3/5.4: P3 reduces the peak bandwidth required, smoothing
    the bursty baseline traffic."""
    model = vgg19()
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=15.0, seed=0)
    base = simulate(model, baseline(), cfg, iterations=4, warmup=1,
                    trace_utilization=True)
    fast = simulate(model, p3(), cfg, iterations=4, warmup=1,
                    trace_utilization=True)

    def peak(run):
        _, gbps = run.utilization.series(0, "tx", bin_s=0.01,
                                         t_start=run.steady_start,
                                         t_end=run.steady_end)
        return np.percentile(gbps, 95)

    def idle(run):
        _, gbps = run.utilization.series(0, "tx", bin_s=0.01,
                                         t_start=run.steady_start,
                                         t_end=run.steady_end)
        return float(np.mean(gbps < 0.01))

    assert idle(fast) < idle(base)


def test_claim_p3_overlaps_bidirectional_bandwidth():
    """Section 5.4: P3 overlaps inbound and outbound traffic; the
    baseline's directions are largely disjoint in time."""
    model = sockeye()
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=4.0, seed=0)

    def overlap(strategy):
        run = simulate(model, strategy, cfg, iterations=4, warmup=1,
                       trace_utilization=True)
        _, tx = run.utilization.series(0, "tx", bin_s=0.01,
                                       t_start=run.steady_start,
                                       t_end=run.steady_end)
        _, rx = run.utilization.series(0, "rx", bin_s=0.01,
                                       t_start=run.steady_start,
                                       t_end=run.steady_end)
        both = np.mean((tx > 0.2) & (rx > 0.2))
        either = np.mean((tx > 0.2) | (rx > 0.2))
        return both / max(either, 1e-9)

    assert overlap(p3()) > overlap(baseline())


def test_claim_scalability_gap_grows_for_vgg():
    """Section 5.5: P3's VGG-19 advantage persists/grows on larger
    clusters at 10 Gbps."""
    model = vgg19()
    gains = []
    for n in (2, 8):
        cfg = ClusterConfig(n_workers=n, bandwidth_gbps=10.0,
                            compute_scale=0.5, seed=0)
        base = simulate(model, baseline(), cfg, iterations=4, warmup=1)
        fast = simulate(model, p3(), cfg, iterations=4, warmup=1)
        gains.append(fast.throughput / base.throughput)
    assert gains[1] > 1.2
    assert gains[1] >= gains[0] * 0.9


def test_claim_p3_never_hurts():
    """P3 ≥ baseline across every model/bandwidth combination tested."""
    for model, bws in ((resnet50(), (2.0, 6.0, 10.0)),
                       (vgg19(), (5.0, 15.0, 30.0)),
                       (sockeye(), (2.0, 8.0))):
        for bw in bws:
            assert _tput(model, p3(), bw) >= 0.97 * _tput(model, baseline(), bw), \
                f"{model.name} @ {bw} Gbps"
