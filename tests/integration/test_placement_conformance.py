"""Cross-substrate placement conformance: one plan, two executors.

The placement subsystem plans in abstract demand units precisely so the
simulator and the live cluster can execute the *same* decision.  These
tests pin that promise at two levels:

* **plan identity** — for the same workload, the sim's rewritten key
  table and the live store's rewritten key plan are identical: same
  keys, same sizes, same shard assignment, same split structure;
* **round identity** — a live run under each placement policy produces
  final parameters bit-identical to the in-process store fed the same
  seeded plan (the live tests fork real processes and are ``slow``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import live_model_spec, run_inprocess
from repro.live import LiveClusterConfig, make_plan, run_live
from repro.sim import ClusterConfig, ClusterSim
from repro.strategies import baseline, p3

PLACEMENTS = ("round_robin", "balanced", "two_tier")


def live_cfg(placement: str, **overrides) -> LiveClusterConfig:
    defaults = dict(
        n_workers=4, n_servers=2, iterations=3, warmup=1,
        in_size=8, hidden=16, depth=1, n_train=32, n_val=16, batch_size=8,
        slice_params=1_500, rate_bytes_per_s=None, chunk_bytes=4_096,
        fwd_layer_s=0.002, bwd_layer_s=0.004, heartbeat_interval_s=0.05,
        placement=placement, split_factor=1.2, max_splits=3,
        agg_group_size=2,
    )
    defaults.update(overrides)
    return LiveClusterConfig(**defaults)


def sim_for(cfg: LiveClusterConfig, strategy: str) -> ClusterSim:
    """The live workload re-expressed on the simulator substrate."""
    strat = p3(cfg.slice_params) if strategy == "p3" else baseline()
    sim_cfg = ClusterConfig(
        n_workers=cfg.n_workers, n_servers=cfg.n_servers,
        bandwidth_gbps=1.0, colocate_servers=False, seed=cfg.store_seed,
        placement=cfg.placement, placement_split_factor=cfg.split_factor,
        placement_max_splits=cfg.max_splits,
        agg_group_size=cfg.agg_group_size)
    return ClusterSim(live_model_spec(cfg), strat, sim_cfg)


# ----------------------------------------------------------------------
# Plan identity (pure, fast)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("placement", PLACEMENTS)
@pytest.mark.parametrize("strategy", ["baseline", "p3"])
def test_sim_and_live_agree_on_every_shard_assignment(placement, strategy):
    cfg = live_cfg(placement)
    live_plan = make_plan(cfg, strategy)
    sim = sim_for(cfg, strategy)

    live_table = [(m.key, m.size, m.server, m.priority)
                  for m in live_plan.metas]
    sim_table = [(pk.key, pk.params, pk.server, pk.priority)
                 for pk in sim.placed]
    assert live_table == sim_table
    # per-shard key sets line up exactly
    for s in range(cfg.n_servers):
        live_keys = sorted(live_plan.server_keys(s))
        sim_keys = sorted(pk.key for pk in sim.placed if pk.server == s)
        assert live_keys == sim_keys, f"shard {s} disagrees"


@pytest.mark.parametrize("placement", ["balanced", "two_tier"])
def test_sim_and_live_compute_the_same_placement_plan(placement):
    """Deeper than table equality: the PlacementPlan object itself —
    spec, splits, groups — is equal across substrates."""
    cfg = live_cfg(placement)
    store = cfg.build_initialized_store("p3")
    sim = sim_for(cfg, "p3")
    assert store.placement_plan is not None
    assert sim.placement_plan is not None
    assert store.placement_plan == sim.placement_plan


def test_two_tier_groups_agree_across_substrates():
    cfg = live_cfg("two_tier")
    store = cfg.build_initialized_store("p3")
    sim = sim_for(cfg, "p3")
    assert store.groups == sim.groups == cfg.worker_groups()
    for w in range(cfg.n_workers):
        assert cfg.group_of(w) == sim.group_of[w]


def test_seeded_plans_are_reproducible():
    """Same config, fresh processes: byte-for-byte the same plan (the
    property every forked live process relies on)."""
    cfg_a = live_cfg("balanced")
    cfg_b = live_cfg("balanced")
    metas_a = [(m.key, m.name, m.start, m.stop, m.server)
               for m in make_plan(cfg_a, "p3").metas]
    metas_b = [(m.key, m.name, m.start, m.stop, m.server)
               for m in make_plan(cfg_b, "p3").metas]
    assert metas_a == metas_b


# ----------------------------------------------------------------------
# Round identity (forks real processes)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("placement", PLACEMENTS)
def test_live_round_results_bit_identical_per_placement(placement):
    """Same seeded plan, real sockets vs in-process store: the final
    parameters must agree bit for bit under every placement policy —
    including split keys (balanced) and partial aggregation through a
    real aggregator process (two_tier)."""
    cfg = live_cfg(placement, rate_bytes_per_s=2_000_000.0)
    live = run_live(cfg, strategy="p3")
    ref = run_inprocess(cfg, strategy="p3")
    assert set(live.final_params) == set(ref)
    for name in ref:
        np.testing.assert_array_equal(
            live.final_params[name], ref[name],
            err_msg=f"{placement}: {name} diverged from in-process store")
