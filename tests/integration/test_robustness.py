"""End-to-end robustness claims under injected faults.

Section 5.3's qualitative claim, extended to degraded clusters: when a
healthy fabric decays — a straggling worker, a NIC running below
nominal rate, a stalling PS shard — priority scheduling degrades no
worse than the baseline, and its absolute throughput advantage
survives.  These tests drive the same sweep the ``robustness`` CLI
subcommand runs, on a grid small enough for CI.
"""

from __future__ import annotations

import pytest

from repro.analysis.robustness import (
    degradation_report,
    fault_plan_for,
    robustness_sweep,
)
from repro.sim import ClusterConfig, FaultPlan, simulate
from repro.strategies import baseline, p3

MODERATE = 0.75  # the harshest point of the default severity grid


@pytest.fixture(scope="module")
def sweep():
    return robustness_sweep(severities=(0.0, MODERATE), iterations=4, warmup=1)


def test_p3_degrades_no_worse_than_baseline(sweep):
    """P3's relative slowdown under a moderate fault plan (straggler +
    sustained link degradation + server stalls) is no worse than the
    baseline strategy's."""
    margin = sweep.notes["p3_minus_baseline_retention"]
    assert margin >= -0.005, (
        f"P3 retained {margin:+.3f} less throughput than baseline "
        f"under the moderate fault plan")


def test_p3_keeps_absolute_advantage_under_faults(sweep):
    """The speedup does not just survive relatively: P3's absolute
    throughput under the fault plan stays at or above the baseline's
    under the identical plan."""
    assert sweep.notes["p3_over_baseline_under_faults"] >= 0.995


def test_link_degradation_favors_priority_scheduling():
    """Under a pure sustained link degradation — the bandwidth-scarcity
    regime §5.3 emphasizes — P3 retains strictly more throughput than
    the baseline."""
    fig = robustness_sweep(severities=(0.0, MODERATE), kinds=("link",),
                           iterations=4, warmup=1)
    p3_r = fig.notes[f"p3_retention_at_{MODERATE:g}"]
    base_r = fig.notes[f"baseline_retention_at_{MODERATE:g}"]
    assert p3_r > base_r


def test_every_strategy_actually_degrades(sweep):
    """Non-vacuity: the moderate plan really bites — every strategy
    loses measurable throughput, so the retention comparison above is
    not a trivial 1.0 == 1.0."""
    for series in sweep.series:
        assert series.y[0] == pytest.approx(1.0)
        assert series.y[-1] < 0.95


def test_sweep_is_reproducible_bit_for_bit(sweep):
    """Same arguments, same seeds => identical figure, down to the last
    float."""
    again = robustness_sweep(severities=(0.0, MODERATE), iterations=4,
                             warmup=1)
    assert sweep.notes == again.notes
    for a, b in zip(sweep.series, again.series):
        assert a.label == b.label
        assert list(a.x) == list(b.x)
        assert list(a.y) == list(b.y)


@pytest.mark.chaos
def test_chaos_sweep_same_seed_is_byte_identical_json(tmp_path):
    """Seeded-determinism regression: two sweeps over the lossy-channel
    fault kind with the same FaultPlan seed serialize to byte-identical
    JSON — occurrence jitter, goodput factors and grid execution all
    flow from the seed, nothing from wall clock or interleaving."""
    from repro.analysis.storage import save_figure

    kwargs = dict(severities=(0.0, MODERATE), kinds=("chaos",),
                  iterations=3, warmup=1, seed=3)
    fig_a = robustness_sweep(**kwargs)
    path_a = save_figure(fig_a, tmp_path / "a.json")
    path_b = save_figure(robustness_sweep(**kwargs), tmp_path / "b.json")
    assert path_a.read_bytes() == path_b.read_bytes()
    # Non-vacuity: the goodput degradation really reached the channels —
    # every strategy loses at least a little throughput at the harshest
    # severity (at 16 Gbps the cluster is compute-bound, so the loss is
    # small but must be nonzero).
    for series in fig_a.series:
        assert series.y[-1] < 1.0


def test_report_mentions_every_strategy(sweep):
    text = degradation_report(sweep)
    for series in sweep.series:
        assert series.label in text
    assert "absolute" in text


def test_fault_plan_for_scales_with_iteration_time():
    plan_a = fault_plan_for(0.5, iteration_time=0.1)
    plan_b = fault_plan_for(0.5, iteration_time=0.2)
    for a, b in zip(plan_a.faults, plan_b.faults):
        assert b.start == pytest.approx(2 * a.start)
        if a.duration is not None:
            assert b.duration == pytest.approx(2 * a.duration)
    assert fault_plan_for(0.0, iteration_time=0.1) == FaultPlan((), seed=0)
    with pytest.raises(ValueError):
        fault_plan_for(1.5, iteration_time=0.1)
    with pytest.raises(ValueError):
        fault_plan_for(0.5, iteration_time=0.0)
    with pytest.raises(ValueError, match="unknown fault kind"):
        fault_plan_for(0.5, iteration_time=0.1, kinds=("straggler", "bogus"))


def test_moderate_plan_direct_simulation(tiny_model):
    """The dimensionless plan fitted to a small model's own timescale
    behaves the same way: P3 under faults keeps its lead over the
    baseline under the identical faults."""
    def run(strategy, plan):
        cfg = ClusterConfig(n_workers=2, bandwidth_gbps=16.0,
                            fault_plan=plan, seed=0)
        return simulate(tiny_model, strategy, cfg, iterations=4, warmup=1)

    iter_t = run(baseline(), None).mean_iteration_time
    plan = fault_plan_for(MODERATE, iter_t, n_workers=2)
    assert run(p3(), plan).throughput >= 0.995 * run(baseline(), plan).throughput
