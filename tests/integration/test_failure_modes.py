"""Negative-path tests: the simulator must fail loudly, not hang or
silently produce wrong numbers, when the protocol breaks."""

from __future__ import annotations

import pytest

from repro.sim import ClusterConfig, ClusterSim
from repro.sim.engine import SimulationError
from repro.sim.network import Message, MsgKind
from repro.strategies import baseline, p3


def test_dropped_push_detected_as_stall(tiny_model):
    """If a server silently loses one push, workers can never finish;
    the deadlock guard must raise instead of returning garbage."""
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=10.0)
    sim = ClusterSim(tiny_model, baseline(), cfg)
    dropped = {"done": False}
    orig = sim.servers[0].on_message

    def lossy(msg: Message):
        if msg.kind is MsgKind.PUSH and not dropped["done"]:
            dropped["done"] = True
            return  # drop exactly one gradient push
        orig(msg)

    sim.servers[0].on_message = lossy
    with pytest.raises(SimulationError, match="stalled"):
        sim.run(iterations=3, warmup=1)


def test_dropped_param_detected_as_stall(tiny_model):
    """Losing a parameter broadcast blocks the next forward pass."""
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=10.0)
    sim = ClusterSim(tiny_model, p3(), cfg)
    dropped = {"done": False}
    orig = sim.workers[1].on_message

    def lossy(msg: Message):
        if msg.kind is MsgKind.PARAM and not dropped["done"]:
            dropped["done"] = True
            return
        orig(msg)

    sim.workers[1].on_message = lossy
    with pytest.raises(SimulationError, match="stalled"):
        sim.run(iterations=3, warmup=1)


def test_stall_error_names_strategy_and_model(tiny_model):
    cfg = ClusterConfig(n_workers=2, bandwidth_gbps=10.0)
    sim = ClusterSim(tiny_model, baseline(), cfg)
    sim.servers[0].on_message = lambda msg: None  # black-hole server
    with pytest.raises(SimulationError) as exc:
        sim.run(iterations=3, warmup=1)
    assert "baseline" in str(exc.value)
    assert tiny_model.name in str(exc.value)


def test_max_events_guard_limits_runaway(tiny_model):
    """max_events bounds a run; with too few events workers are
    incomplete and the guard fires."""
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=0.1)
    sim = ClusterSim(tiny_model, baseline(), cfg)
    with pytest.raises(SimulationError, match="stalled"):
        sim.run(iterations=50, warmup=1, max_events=100)
