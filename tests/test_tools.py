"""Tests for repository tooling (docs generator)."""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"


def _load_gen():
    spec = importlib.util.spec_from_file_location(
        "gen_api_reference", TOOLS / "gen_api_reference.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_every_listed_module_documents():
    gen = _load_gen()
    for name in gen.MODULES:
        lines = gen.document_module(name)
        assert lines[0] == f"## `{name}`"


def test_module_list_covers_all_source_modules():
    """Every non-underscore module under src/repro must be listed (so
    the reference cannot silently rot)."""
    gen = _load_gen()
    src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    found = set()
    for path in src.rglob("*.py"):
        rel = path.relative_to(src.parent)
        if rel.name == "__init__.py":
            continue
        found.add(".".join(rel.with_suffix("").parts))
    missing = found - set(gen.MODULES)
    assert not missing, f"add to tools/gen_api_reference.py MODULES: {missing}"


def test_generate_produces_markdown(tmp_path):
    gen = _load_gen()
    text = gen.generate()
    assert text.startswith("# API reference")
    assert "## `repro.sim.cluster`" in text
    assert "ClusterConfig" in text


def test_main_writes_file(tmp_path):
    gen = _load_gen()
    out = tmp_path / "api.md"
    assert gen.main(["--out", str(out)]) == 0
    assert out.exists()
