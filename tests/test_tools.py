"""Tests for repository tooling (docs generator)."""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"


def _load_gen():
    spec = importlib.util.spec_from_file_location(
        "gen_api_reference", TOOLS / "gen_api_reference.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_every_listed_module_documents():
    gen = _load_gen()
    for name in gen.MODULES:
        lines = gen.document_module(name)
        assert lines[0] == f"## `{name}`"


def test_module_list_covers_all_source_modules():
    """Every non-underscore module under src/repro must be listed (so
    the reference cannot silently rot)."""
    gen = _load_gen()
    src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    found = set()
    for path in src.rglob("*.py"):
        rel = path.relative_to(src.parent)
        if rel.name == "__init__.py":
            continue
        found.add(".".join(rel.with_suffix("").parts))
    missing = found - set(gen.MODULES)
    assert not missing, f"add to tools/gen_api_reference.py MODULES: {missing}"


def test_generate_produces_markdown(tmp_path):
    gen = _load_gen()
    text = gen.generate()
    assert text.startswith("# API reference")
    assert "## `repro.sim.cluster`" in text
    assert "ClusterConfig" in text


def test_main_writes_file(tmp_path):
    gen = _load_gen()
    out = tmp_path / "api.md"
    assert gen.main(["--out", str(out)]) == 0
    assert out.exists()


# ----------------------------------------------------------------------
# bench_snapshot.py
# ----------------------------------------------------------------------
def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_snapshot", TOOLS / "bench_snapshot.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_bench_snapshot_numbering(tmp_path):
    bench = _load_bench()
    assert bench.next_snapshot_path(tmp_path).name == "BENCH_1.json"
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_7.json").write_text("{}")
    (tmp_path / "BENCH_extra.json").write_text("{}")  # non-numeric ignored
    assert bench.next_snapshot_path(tmp_path).name == "BENCH_8.json"


@pytest.mark.slow
def test_bench_snapshot_quick_run(tmp_path, capsys):
    """End-to-end --quick run: writes a schema-valid BENCH_1.json."""
    import json

    bench = _load_bench()
    assert bench.main(["--quick", "--iterations", "2",
                       "--out-dir", str(tmp_path)]) == 0
    path = tmp_path / "BENCH_1.json"
    assert path.exists()
    snap = json.loads(path.read_text())
    assert snap["schema"] == bench.SCHEMA_VERSION
    assert {"python", "numpy", "platform"} <= set(snap["environment"])
    rows = snap["sim_throughput"]
    assert {r["strategy"] for r in rows} == {"baseline", "slicing", "p3"}
    assert all(r["throughput"] > 0 for r in rows)
    micro = snap["live_microbench"]
    assert micro["goodput_bytes_per_s"] > 0
    assert micro["shaping_error"] < 1.0
    assert "wrote" in capsys.readouterr().out
