"""Repo-root pytest hook: make `repro` importable straight from src/.

Lets ``pytest tests/ benchmarks/`` run from a fresh checkout even when
the package has not been pip-installed (e.g. offline environments where
PEP 660 editable installs are unavailable)."""

import pathlib
import sys

_SRC = str(pathlib.Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
