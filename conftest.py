"""Repo-root pytest hooks.

1. Make `repro` importable straight from src/: lets ``pytest tests/
   benchmarks/`` run from a fresh checkout even when the package has not
   been pip-installed (e.g. offline environments where PEP 660 editable
   installs are unavailable).
2. Run ``async def`` tests without pytest-asyncio: CI installs the real
   plugin, but offline checkouts may not have it — the fallback below
   executes coroutine tests on a fresh ``asyncio.run`` loop so the
   async-live suite works everywhere.  It steps aside automatically when
   pytest-asyncio is present.
"""

import asyncio
import inspect
import pathlib
import sys

import pytest

_SRC = str(pathlib.Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def _has_asyncio_plugin(config) -> bool:
    return config.pluginmanager.hasplugin("asyncio") \
        or config.pluginmanager.hasplugin("pytest_asyncio")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "asyncio: coroutine test (pytest-asyncio, or the conftest "
        "fallback loop when the plugin is unavailable)")


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    """Fallback coroutine runner when pytest-asyncio is not installed."""
    if _has_asyncio_plugin(pyfuncitem.config):
        return None  # the real plugin owns coroutine execution
    func = pyfuncitem.obj
    if not inspect.iscoroutinefunction(func):
        return None
    kwargs = {name: pyfuncitem.funcargs[name]
              for name in pyfuncitem._fixtureinfo.argnames}
    asyncio.run(func(**kwargs))
    return True
