# Convenience targets for the P3 reproduction.

PYTHON ?= python

.PHONY: install test test-fast test-perf test-aio test-tenancy coverage bench bench-snapshot perf-smoke live-demo report quick-report figures clean

export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

install:
	pip install -e .[dev]

test:
	$(PYTHON) -m pytest tests/ -x -q

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -p no:randomly -m "not slow"

# Perf-path correctness: the golden-trace flag matrix and the
# warm-start fallback battery (run by the blocking CI perf-smoke job)
test-perf:
	$(PYTHON) -m pytest tests/ -x -q -m perf

# The async-live battery: membership properties, async transport,
# elastic conformance, driver cleanup (CI runs this as its own job)
test-aio:
	$(PYTHON) -m pytest tests/live/test_membership.py \
	    tests/live/test_aio_transport.py tests/live/test_aio_cluster.py \
	    tests/live/test_driver_cleanup.py -x -q

# The multi-tenant battery: fairness/starvation properties, tenant
# isolation (bit-identity), cross-substrate scheduler conformance, and
# the shaper-accounting regressions (run by the blocking CI tenancy job)
test-tenancy:
	$(PYTHON) -m pytest tests/tenancy/ -x -q -m tenancy
	$(PYTHON) -m pytest tests/live/test_transport.py \
	    tests/live/test_aio_transport.py -x -q

# stdlib-only coverage measurement (CI enforces the floor via pytest-cov)
coverage:
	$(PYTHON) tools/measure_coverage.py --json coverage.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-snapshot:
	$(PYTHON) tools/bench_snapshot.py

# regression check vs the latest committed BENCH_*.json: engine
# events/s regressions fail — both the tuple-loop bench (relative) and
# the batched bench (relative + absolute 2.8M events/s floor) are
# blocking; sim wall times only warn
perf-smoke:
	$(PYTHON) tools/bench_snapshot.py --check

live-demo:
	$(PYTHON) examples/live_cluster.py

report:
	$(PYTHON) -m repro.analysis.report --out report.md

quick-report:
	$(PYTHON) -m repro.analysis.report --quick --out report.md

figures:
	$(PYTHON) -m repro.cli summary

clean:
	rm -rf results report.md trace.json .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
