"""Emit a versioned performance snapshot: ``BENCH_<n>.json``.

Tracks the repo's perf trajectory across PRs with four kinds of numbers:

* **Engine microbench** — raw events/second through the discrete-event
  loop on a synthetic schedule/cancel/fire mix, isolating the hot loop
  from model/protocol behaviour.  Schema 3 adds a **batched** variant:
  the same event volume flowing as homogeneous :class:`BatchFire` waves
  through ``schedule_at_batch``, which is the engine's vectorized fast
  path (deferred wholesale runs — no per-event heap traffic at all).
* **Warm-start sweep** — wall clock of an eligible sweep grid executed
  cold (every iteration simulated) vs through the incremental
  warm-start executor (``run_grid(..., warm_start=True)``), plus the
  worst relative deviation between the two result sets.  This is the
  figure-level payoff of steady-state extrapolation.
* **Simulated training throughput** per strategy (baseline / slicing /
  p3) for the paper's heavyweight models at two bandwidths — the
  headline quantity every optimization PR should move (or at least not
  regress) — with the wall time each simulation took.
* **Sweep wall times** — end-to-end wall clock of the fig7 vgg19
  bandwidth sweep (the acceptance workload for the simulator fast
  path): serial cold, ``--jobs 4`` cold, and warm-cache, against the
  committed pre-optimization reference.
* **Live-transport goodput microbench** — bytes/s actually achieved by
  the priority sender through its token-bucket shaper over a localhost
  socket pair, plus the shaping error vs the configured rate.  This
  watches the constant factors of the real data plane
  (:mod:`repro.live.transport`) that the simulator cannot see.

Usage::

    python tools/bench_snapshot.py                  # writes BENCH_<n>.json
    python tools/bench_snapshot.py --quick          # tiny models, CI-sized
    python tools/bench_snapshot.py --out-dir /tmp   # elsewhere
    python tools/bench_snapshot.py --check          # warn vs latest snapshot

``<n>`` auto-increments over existing snapshots so history accumulates
in-repo; compare two snapshots with a plain diff.  ``--check`` measures
a CI-sized subset against the most recent committed snapshot: a >25%
regression in engine events/s **fails** (nonzero exit — the microbench
is pure in-process CPU, stable enough to gate on), while sim wall-time
regressions only *warn* (they fork and hit the scheduler; shared
runners are too noisy to gate merges on those).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import shutil
import socket as socket_mod
import sys
import tempfile
import time
from typing import Dict, List, Optional

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SCHEMA_VERSION = 3
SIM_MODELS = ("vgg19", "resnet50", "sockeye")
SIM_BANDWIDTHS = (4.0, 16.0)
SIM_STRATEGIES = ("baseline", "slicing", "p3")

#: Absolute floor for the batched engine microbench, in events/second.
#: The vectorized core's acceptance bar (~3x the tuple-loop chain bench
#: recorded in BENCH_2: 945k events/s); ``--check`` fails below it.
BATCHED_EVENTS_FLOOR = 2_800_000

#: Warm-start sweep grid: a model/strategy/bandwidth box whose steady
#: state verifies at period 1 on the first warm rung for every point
#: (inceptionv3 at >= 5 Gbps does; baseline at 4 Gbps has a longer
#: transient and would fall back cold, and vgg19/p3 at 10 Gbps is
#: quasi-periodic).  The bench wants the verified-extrapolation payoff,
#: not the fallback path's honesty — that one is covered by tests.
WARM_SWEEP_MODEL = "inceptionv3"
WARM_SWEEP_BANDWIDTHS = (8.0, 16.0)
WARM_SWEEP_ITERATIONS = 100

#: Wall seconds of ``fig7_bandwidth_sweep("vgg19", iterations=5)`` on the
#: pre-optimization engine (commit 561f99e), measured on the same host
#: that produced BENCH_2.json.  The sweep-wall-time section reports its
#: speedups against this fixed reference.
PRE_CHANGE_FIG7_VGG19_WALL_S = 21.829
PRE_CHANGE_COMMIT = "561f99e"

#: --check warns when a wall time exceeds the reference by this factor
#: plus the absolute slack — the slack keeps sub-second rows from
#: warning on scheduler jitter alone.
CHECK_TOLERANCE = 1.25
CHECK_ABS_SLACK_S = 0.25


def engine_microbench(n_events: int = 300_000) -> Dict:
    """Events/second through the bare event loop.

    A self-feeding chain: every event schedules the next with the
    handle-free ``after`` fast path, and every tenth also exercises the
    handled ``schedule`` + ``cancel`` path (whose lazily-skipped heap
    entries are the loop's other branch).  No messages, no channels —
    this isolates the engine's per-event constant.
    """
    from repro.sim.engine import Simulator

    sim = Simulator()
    remaining = [n_events]

    def noop() -> None:  # pragma: no cover - target of cancelled events
        pass

    def tick() -> None:
        r = remaining[0]
        if r <= 0:
            return
        remaining[0] = r - 1
        if r % 10 == 0:
            sim.schedule(2e-6, noop).cancel()
        sim.after(1e-6, tick)

    sim.after(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    processed = sim.events_processed
    return {
        "synthetic_events": n_events,
        "events_processed": processed,
        "wall_s": round(wall, 4),
        "events_per_s": round(processed / wall, 1),
    }


def engine_microbench_batched(n_events: int = 300_000, wave: int = 2048,
                              repeats: int = 3) -> Dict:
    """Events/second through the vectorized batch path (best of N runs).

    The workload is the shape the fast path exists for: homogeneous
    waves of a single :class:`BatchFire` callback, each wave bulk-
    scheduled with ``schedule_at_batch`` and firing as one wholesale
    run (``fire_batch`` schedules the next wave strictly after its own
    last timestamp, honouring the batch-fire contract).  With the heap
    empty between waves the engine defers each run entirely — no
    per-event heap entries — so this measures the vectorized core's
    per-event constant the way :func:`engine_microbench` measures the
    tuple loop's.
    """
    from repro.sim.engine import BatchFire, Simulator

    best = None
    for _ in range(repeats):
        sim = Simulator(batch=True)
        state = {"remaining": n_events}

        def fire(*_args) -> None:  # pragma: no cover - single-fire fallback
            pass

        def fire_batch(times, _argss) -> None:
            r = state["remaining"]
            if r <= 0:
                return
            k = wave if wave < r else r
            state["remaining"] = r - k
            base = times[-1]
            sim.schedule_at_batch(
                [base + 1e-6 * (i + 1) for i in range(k)], bf)

        bf = BatchFire(fire, fire_batch)
        seed = wave if wave < n_events else n_events
        state["remaining"] = n_events - seed
        sim.schedule_at_batch([1e-6 * (i + 1) for i in range(seed)], bf)
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        processed = sim.events_processed
        if best is None or wall < best[0]:
            best = (wall, processed)
    wall, processed = best
    return {
        "synthetic_events": n_events,
        "wave": wave,
        "repeats": repeats,
        "events_processed": processed,
        "wall_s": round(wall, 4),
        "events_per_s": round(processed / wall, 1),
        "floor_events_per_s": BATCHED_EVENTS_FLOOR,
    }


def warm_sweep_bench(iterations: int = WARM_SWEEP_ITERATIONS,
                     warmup: int = 2) -> Dict:
    """Cold vs warm-start execution of an eligible sweep grid.

    Runs the same strategy x bandwidth grid twice through
    :func:`repro.analysis.runner.run_grid` — once cold (every iteration
    simulated) and once with ``warm_start=True`` (verified steady-state
    extrapolation) — both uncached and serial, so the wall times compare
    pure execution.  Reports the speedup, the worst relative throughput
    deviation between the two result sets, and whether the extrapolated
    event totals matched the cold run exactly.
    """
    from repro.analysis.runner import SimPoint, run_grid
    from repro.sim import ClusterConfig
    from repro.strategies import get_strategy

    points = [
        SimPoint(WARM_SWEEP_MODEL, get_strategy(strategy),
                 ClusterConfig(n_workers=4, bandwidth_gbps=bw),
                 iterations, warmup)
        for strategy in SIM_STRATEGIES
        for bw in WARM_SWEEP_BANDWIDTHS
    ]
    t0 = time.perf_counter()
    cold = run_grid(points)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = run_grid(points, warm_start=True)
    warm_s = time.perf_counter() - t0
    rel_err = max(
        abs(w.throughput - c.throughput) / c.throughput
        for w, c in zip(warm, cold)
    )
    return {
        "grid": (f"{WARM_SWEEP_MODEL} x {list(SIM_STRATEGIES)} x "
                 f"{list(WARM_SWEEP_BANDWIDTHS)} Gbps, "
                 f"iterations={iterations}"),
        "points": len(points),
        "cold_wall_s": round(cold_s, 3),
        "warm_wall_s": round(warm_s, 3),
        "speedup_warm_vs_cold": round(cold_s / warm_s, 2),
        "max_rel_throughput_err": float(f"{rel_err:.3g}"),
        "events_exact": all(w.events_processed == c.events_processed
                            for w, c in zip(warm, cold)),
    }


def sweep_wall_times(jobs: int = 4, iterations: int = 5) -> Dict:
    """Wall clock of the fig7 vgg19 sweep: serial cold, jobs cold, warm.

    The three figures are byte-compared so the numbers can never come
    from divergent computations, and the requested vs effective job
    count is recorded — on a box with fewer CPUs the runner clamps, and
    the honest number is the clamped one.
    """
    from repro.analysis import SimCache, fig7_bandwidth_sweep, save_figure
    from repro.analysis.runner import effective_jobs

    def wall(**kwargs) -> tuple:
        t0 = time.perf_counter()
        fig = fig7_bandwidth_sweep("vgg19", iterations=iterations, **kwargs)
        return time.perf_counter() - t0, fig

    serial_s, fig_serial = wall()
    cache_dir = tempfile.mkdtemp(prefix="bench-cache-")
    try:
        cold_s, fig_cold = wall(jobs=jobs, cache=SimCache(cache_dir))
        warm_s, fig_warm = wall(jobs=jobs, cache=SimCache(cache_dir))
        out = pathlib.Path(cache_dir)
        paths = [save_figure(f, out / f"{i}.json")
                 for i, f in enumerate((fig_serial, fig_cold, fig_warm))]
        blobs = [p.read_bytes() for p in paths]
        identical = blobs[0] == blobs[1] == blobs[2]
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    ref = PRE_CHANGE_FIG7_VGG19_WALL_S
    return {
        "sweep": f"fig7_bandwidth_sweep('vgg19', iterations={iterations}) "
                 "— 7 bandwidths x 3 strategies",
        "pre_change_reference": {"commit": PRE_CHANGE_COMMIT,
                                 "wall_s": ref},
        "serial_cold_wall_s": round(serial_s, 3),
        "jobs_requested": jobs,
        "jobs_effective": effective_jobs(jobs),
        "jobs_cold_wall_s": round(cold_s, 3),
        "warm_cache_wall_s": round(warm_s, 3),
        "speedup_serial_cold_vs_reference": round(ref / serial_s, 2),
        "speedup_jobs_cold_vs_reference": round(ref / cold_s, 2),
        "speedup_warm_vs_reference": round(ref / warm_s, 2),
        "figures_byte_identical": identical,
    }


def sim_throughputs(models: List[str], bandwidths: List[float],
                    iterations: int) -> List[Dict]:
    """Per-(model, bandwidth, strategy) simulated throughput."""
    from repro.models import get_model
    from repro.sim import ClusterConfig, simulate
    from repro.strategies import get_strategy

    rows: List[Dict] = []
    for model_name in models:
        model = get_model(model_name)
        for bw in bandwidths:
            cfg = ClusterConfig(n_workers=4, bandwidth_gbps=bw)
            for strategy in SIM_STRATEGIES:
                t0 = time.perf_counter()
                result = simulate(model, get_strategy(strategy), cfg,
                                  iterations=iterations, warmup=1)
                rows.append({
                    "model": model_name,
                    "bandwidth_gbps": bw,
                    "strategy": strategy,
                    "throughput": round(result.throughput, 3),
                    "mean_iteration_s": round(result.mean_iteration_time, 6),
                    "bench_wall_s": round(time.perf_counter() - t0, 3),
                })
    return rows


def live_goodput_microbench(rate_bytes_per_s: float = 4_000_000.0,
                            payload_bytes: int = 400_000,
                            chunk_bytes: int = 16_384) -> Dict:
    """Shaped goodput through PrioritySender over a loopback socketpair."""
    from repro.live.transport import PrioritySender, TokenBucket
    from repro.live.wire import HEADER_SIZE, WireKind

    left, right = socket_mod.socketpair()
    received = bytearray()
    try:
        sender = PrioritySender(left, sender_id=0,
                                shaper=TokenBucket(rate_bytes_per_s,
                                                   burst_bytes=chunk_bytes * 2),
                                chunk_bytes=chunk_bytes)
        payload = bytes(payload_bytes)
        t0 = time.perf_counter()
        sender.send(WireKind.PUSH, key=0, iteration=0, priority=0,
                    payload=payload)
        right.settimeout(60.0)
        expect = payload_bytes + HEADER_SIZE * -(-payload_bytes // chunk_bytes)
        while len(received) < expect:
            received.extend(right.recv(65536))
        elapsed = time.perf_counter() - t0
        sender.close()
    finally:
        left.close()
        right.close()
    goodput = payload_bytes / elapsed
    return {
        "rate_bytes_per_s": rate_bytes_per_s,
        "payload_bytes": payload_bytes,
        "chunk_bytes": chunk_bytes,
        "elapsed_s": round(elapsed, 4),
        "goodput_bytes_per_s": round(goodput, 1),
        "shaping_error": round(abs(goodput - rate_bytes_per_s)
                               / rate_bytes_per_s, 4),
    }


def aio_scale_bench(n_workers: int = 64) -> Dict:
    """Advisory scale row: one event loop hosting ``n_workers`` workers.

    Runs the asyncio live substrate (``repro.live.aio``) through a full
    P3 training job plus the in-process reference and reports wall time,
    per-iteration time, and whether bit-identity held.  This is the
    calibration workload at the scale the thread-per-connection stack
    could not host; wall time on shared runners is noisy, so the row is
    informational and never gated on.
    """
    from repro.analysis.calibration import run_inprocess
    from repro.live import LiveClusterConfig
    from repro.live.aio import run_live_aio

    import numpy as np

    cfg = LiveClusterConfig(
        n_workers=n_workers, n_servers=2, iterations=3, warmup=1,
        batch_size=n_workers, in_size=6, hidden=8, depth=1,
        n_train=2 * n_workers, n_val=16,
        fwd_layer_s=0.0005, bwd_layer_s=0.001,
        rate_bytes_per_s=50_000_000.0, chunk_bytes=4096,
        heartbeat_interval_s=0.5,
    )
    t0 = time.perf_counter()
    result = run_live_aio(cfg, strategy="p3")
    wall = time.perf_counter() - t0
    ref = run_inprocess(cfg, "p3")
    identical = all(np.array_equal(result.final_params[k], ref[k])
                    for k in ref)
    return {
        "n_workers": n_workers,
        "n_servers": cfg.n_servers,
        "iterations": cfg.iterations,
        "wall_s": round(wall, 3),
        "mean_iteration_s": round(result.mean_iteration_time, 4),
        "bit_identical_vs_inprocess": identical,
    }


def next_snapshot_path(out_dir: pathlib.Path) -> pathlib.Path:
    taken = []
    for p in out_dir.glob("BENCH_*.json"):
        stem = p.stem.split("_", 1)[-1]
        if stem.isdigit():
            taken.append(int(stem))
    return out_dir / f"BENCH_{max(taken, default=0) + 1}.json"


def latest_snapshot_path(out_dir: pathlib.Path) -> Optional[pathlib.Path]:
    best, best_n = None, -1
    for p in out_dir.glob("BENCH_*.json"):
        stem = p.stem.split("_", 1)[-1]
        if stem.isdigit() and int(stem) > best_n:
            best, best_n = p, int(stem)
    return best


def build_snapshot(models: List[str], bandwidths: List[float],
                   iterations: int, include_sweeps: bool = True,
                   sweep_jobs: int = 4, aio_workers: int = 64) -> Dict:
    import numpy

    snapshot = {
        "schema": SCHEMA_VERSION,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "platform": platform.platform(),
        },
        "engine_microbench": engine_microbench(),
        "engine_microbench_batched": engine_microbench_batched(),
        "sim_throughput": sim_throughputs(models, bandwidths, iterations),
    }
    if include_sweeps:
        snapshot["warm_start_sweep"] = warm_sweep_bench()
        snapshot["sweep_wall_times"] = sweep_wall_times(jobs=sweep_jobs)
    snapshot["live_microbench"] = live_goodput_microbench()
    snapshot["aio_scale"] = aio_scale_bench(n_workers=aio_workers)
    return snapshot


def check_regressions(out_dir: pathlib.Path) -> int:
    """Compare a CI-sized measurement against the latest snapshot.

    Two tiers of strictness:

    * **engine events/s is blocking** — the microbench is a pure
      in-process CPU loop (no sockets, no forks, no disk), stable
      enough on shared runners to gate merges on: a measurement more
      than ``CHECK_TOLERANCE`` below the committed snapshot returns a
      nonzero exit status.
    * **sim wall times stay advisory** — they fork and hit the
      scheduler; regressions print WARNING lines but never fail, so a
      human looks before the trend compounds.
    """
    ref_path = latest_snapshot_path(out_dir)
    if ref_path is None:
        print(f"no BENCH_*.json under {out_dir}; nothing to check against")
        return 0
    ref = json.loads(ref_path.read_text())
    warnings = 0
    failures = 0

    engine = engine_microbench()
    print(f"engine: {engine['events_per_s']:,.0f} events/s "
          f"({engine['events_processed']} events in {engine['wall_s']}s)")
    ref_engine = ref.get("engine_microbench")
    if ref_engine:
        floor = ref_engine["events_per_s"] / CHECK_TOLERANCE
        if engine["events_per_s"] < floor:
            failures += 1
            print(f"FAIL: engine events/s {engine['events_per_s']:,.0f} "
                  f"is >{(CHECK_TOLERANCE - 1) * 100:.0f}% below "
                  f"{ref_path.name}'s {ref_engine['events_per_s']:,.0f} "
                  f"(blocking: the engine bench has no fork/IO noise)")

    batched = engine_microbench_batched()
    print(f"engine batched: {batched['events_per_s']:,.0f} events/s "
          f"(wave={batched['wave']}, floor "
          f"{BATCHED_EVENTS_FLOOR:,.0f})")
    if batched["events_per_s"] < BATCHED_EVENTS_FLOOR:
        failures += 1
        print(f"FAIL: batched engine events/s "
              f"{batched['events_per_s']:,.0f} is below the absolute "
              f"floor {BATCHED_EVENTS_FLOOR:,.0f} (blocking: the "
              "vectorized core's acceptance bar)")
    ref_batched = ref.get("engine_microbench_batched")
    if ref_batched:
        floor = ref_batched["events_per_s"] / CHECK_TOLERANCE
        if batched["events_per_s"] < floor:
            failures += 1
            print(f"FAIL: batched engine events/s "
                  f"{batched['events_per_s']:,.0f} is "
                  f">{(CHECK_TOLERANCE - 1) * 100:.0f}% below "
                  f"{ref_path.name}'s {ref_batched['events_per_s']:,.0f} "
                  "(blocking)")

    rows = sim_throughputs(["resnet50"], [4.0], iterations=4)
    ref_rows = {(r["model"], r["bandwidth_gbps"], r["strategy"]): r
                for r in ref.get("sim_throughput", [])}
    for row in rows:
        key = (row["model"], row["bandwidth_gbps"], row["strategy"])
        ref_row = ref_rows.get(key)
        print(f"sim {key[0]}@{key[1]:g}Gbps/{key[2]}: "
              f"{row['bench_wall_s']}s wall")
        if ref_row and row["bench_wall_s"] > \
                ref_row["bench_wall_s"] * CHECK_TOLERANCE + CHECK_ABS_SLACK_S:
            warnings += 1
            print(f"WARNING: {key} wall {row['bench_wall_s']}s is "
                  f">{(CHECK_TOLERANCE - 1) * 100:.0f}% above "
                  f"{ref_path.name}'s {ref_row['bench_wall_s']}s")
    if warnings:
        print(f"{warnings} perf warning(s) vs {ref_path.name} "
              "(advisory only)")
    if failures:
        print(f"{failures} blocking perf failure(s) vs {ref_path.name}")
        return 1
    if not warnings:
        print(f"no perf regressions vs {ref_path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out-dir", default=str(REPO),
                        help="directory for BENCH_<n>.json (default: repo root)")
    parser.add_argument("--models", nargs="+", default=list(SIM_MODELS))
    parser.add_argument("--bandwidths", nargs="+", type=float,
                        default=list(SIM_BANDWIDTHS))
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--sweep-jobs", type=int, default=4,
                        help="--jobs value for the sweep wall-time section")
    parser.add_argument("--quick", action="store_true",
                        help="resnet50-only, one bandwidth, no sweep "
                             "section (CI-sized)")
    parser.add_argument("--check", action="store_true",
                        help="measure a CI-sized subset vs the latest "
                             "committed snapshot: engine events/s "
                             "regressions >25%% fail (nonzero exit); sim "
                             "wall-time regressions only warn")
    args = parser.parse_args(argv)
    if args.check:
        return check_regressions(pathlib.Path(args.out_dir))
    models = ["resnet50"] if args.quick else args.models
    bandwidths = [args.bandwidths[0]] if args.quick else args.bandwidths

    snapshot = build_snapshot(models, bandwidths, args.iterations,
                              include_sweeps=not args.quick,
                              sweep_jobs=args.sweep_jobs,
                              aio_workers=16 if args.quick else 64)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = next_snapshot_path(out_dir)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")
    n_rows = len(snapshot["sim_throughput"])
    print(f"wrote {path} ({n_rows} sim rows, engine "
          f"{snapshot['engine_microbench']['events_per_s']:,.0f} events/s, "
          f"batched "
          f"{snapshot['engine_microbench_batched']['events_per_s']:,.0f} "
          f"events/s, live goodput "
          f"{snapshot['live_microbench']['goodput_bytes_per_s']:.0f} B/s)")
    warm = snapshot.get("warm_start_sweep")
    if warm:
        print(f"warm-start sweep: cold {warm['cold_wall_s']}s, warm "
              f"{warm['warm_wall_s']}s "
              f"({warm['speedup_warm_vs_cold']}x, max rel err "
              f"{warm['max_rel_throughput_err']:g}, events_exact="
              f"{warm['events_exact']})")
    aio = snapshot["aio_scale"]
    print(f"aio scale: {aio['n_workers']} workers on one event loop in "
          f"{aio['wall_s']}s, bit-identical="
          f"{aio['bit_identical_vs_inprocess']}")
    sweeps = snapshot.get("sweep_wall_times")
    if sweeps:
        print(f"fig7 vgg19 sweep: serial {sweeps['serial_cold_wall_s']}s "
              f"({sweeps['speedup_serial_cold_vs_reference']}x vs "
              f"{PRE_CHANGE_COMMIT}), jobs={sweeps['jobs_effective']} cold "
              f"{sweeps['jobs_cold_wall_s']}s, warm cache "
              f"{sweeps['warm_cache_wall_s']}s "
              f"({sweeps['speedup_warm_vs_reference']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
