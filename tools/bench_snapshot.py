"""Emit a versioned performance snapshot: ``BENCH_<n>.json``.

Tracks the repo's perf trajectory across PRs with two kinds of numbers:

* **Simulated training throughput** per strategy (baseline / slicing /
  p3) for the paper's heavyweight models at two bandwidths — the
  headline quantity every optimization PR should move (or at least not
  regress).
* **Live-transport goodput microbench** — bytes/s actually achieved by
  the priority sender through its token-bucket shaper over a localhost
  socket pair, plus the shaping error vs the configured rate.  This
  watches the constant factors of the real data plane
  (:mod:`repro.live.transport`) that the simulator cannot see.

Usage::

    python tools/bench_snapshot.py                  # writes BENCH_<n>.json
    python tools/bench_snapshot.py --quick          # tiny models, CI-sized
    python tools/bench_snapshot.py --out-dir /tmp   # elsewhere

``<n>`` auto-increments over existing snapshots so history accumulates
in-repo; compare two snapshots with a plain diff.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import socket as socket_mod
import sys
import time
from typing import Dict, List

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SCHEMA_VERSION = 1
SIM_MODELS = ("vgg19", "resnet50", "sockeye")
SIM_BANDWIDTHS = (4.0, 16.0)
SIM_STRATEGIES = ("baseline", "slicing", "p3")


def sim_throughputs(models: List[str], bandwidths: List[float],
                    iterations: int) -> List[Dict]:
    """Per-(model, bandwidth, strategy) simulated throughput."""
    from repro.models import get_model
    from repro.sim import ClusterConfig, simulate
    from repro.strategies import get_strategy

    rows: List[Dict] = []
    for model_name in models:
        model = get_model(model_name)
        for bw in bandwidths:
            cfg = ClusterConfig(n_workers=4, bandwidth_gbps=bw)
            for strategy in SIM_STRATEGIES:
                t0 = time.perf_counter()
                result = simulate(model, get_strategy(strategy), cfg,
                                  iterations=iterations, warmup=1)
                rows.append({
                    "model": model_name,
                    "bandwidth_gbps": bw,
                    "strategy": strategy,
                    "throughput": round(result.throughput, 3),
                    "mean_iteration_s": round(result.mean_iteration_time, 6),
                    "bench_wall_s": round(time.perf_counter() - t0, 3),
                })
    return rows


def live_goodput_microbench(rate_bytes_per_s: float = 4_000_000.0,
                            payload_bytes: int = 400_000,
                            chunk_bytes: int = 16_384) -> Dict:
    """Shaped goodput through PrioritySender over a loopback socketpair."""
    from repro.live.transport import PrioritySender, TokenBucket
    from repro.live.wire import HEADER_SIZE, WireKind

    left, right = socket_mod.socketpair()
    received = bytearray()
    try:
        sender = PrioritySender(left, sender_id=0,
                                shaper=TokenBucket(rate_bytes_per_s,
                                                   burst_bytes=chunk_bytes * 2),
                                chunk_bytes=chunk_bytes)
        payload = bytes(payload_bytes)
        t0 = time.perf_counter()
        sender.send(WireKind.PUSH, key=0, iteration=0, priority=0,
                    payload=payload)
        right.settimeout(60.0)
        expect = payload_bytes + HEADER_SIZE * -(-payload_bytes // chunk_bytes)
        while len(received) < expect:
            received.extend(right.recv(65536))
        elapsed = time.perf_counter() - t0
        sender.close()
    finally:
        left.close()
        right.close()
    goodput = payload_bytes / elapsed
    return {
        "rate_bytes_per_s": rate_bytes_per_s,
        "payload_bytes": payload_bytes,
        "chunk_bytes": chunk_bytes,
        "elapsed_s": round(elapsed, 4),
        "goodput_bytes_per_s": round(goodput, 1),
        "shaping_error": round(abs(goodput - rate_bytes_per_s)
                               / rate_bytes_per_s, 4),
    }


def next_snapshot_path(out_dir: pathlib.Path) -> pathlib.Path:
    taken = []
    for p in out_dir.glob("BENCH_*.json"):
        stem = p.stem.split("_", 1)[-1]
        if stem.isdigit():
            taken.append(int(stem))
    return out_dir / f"BENCH_{max(taken, default=0) + 1}.json"


def build_snapshot(models: List[str], bandwidths: List[float],
                   iterations: int) -> Dict:
    import numpy

    return {
        "schema": SCHEMA_VERSION,
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "platform": platform.platform(),
        },
        "sim_throughput": sim_throughputs(models, bandwidths, iterations),
        "live_microbench": live_goodput_microbench(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out-dir", default=str(REPO),
                        help="directory for BENCH_<n>.json (default: repo root)")
    parser.add_argument("--models", nargs="+", default=list(SIM_MODELS))
    parser.add_argument("--bandwidths", nargs="+", type=float,
                        default=list(SIM_BANDWIDTHS))
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--quick", action="store_true",
                        help="resnet50-only, one bandwidth (CI-sized)")
    args = parser.parse_args(argv)
    models = ["resnet50"] if args.quick else args.models
    bandwidths = [args.bandwidths[0]] if args.quick else args.bandwidths

    snapshot = build_snapshot(models, bandwidths, args.iterations)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = next_snapshot_path(out_dir)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")
    n_rows = len(snapshot["sim_throughput"])
    print(f"wrote {path} ({n_rows} sim rows, live goodput "
          f"{snapshot['live_microbench']['goodput_bytes_per_s']:.0f} B/s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
