#!/usr/bin/env python
"""Measure line coverage of src/repro with the stdlib only.

CI enforces a coverage floor through ``pytest-cov`` (see
``.github/workflows/ci.yml``), but that plugin is not part of the local
dev environment.  This tool reproduces the measurement with
``sys.settrace``/``threading.settrace`` so the floor baked into CI can
be derived — and sanity-checked — on any machine::

    python tools/measure_coverage.py                 # fast subset
    python tools/measure_coverage.py -- -q tests/    # full tier-1 suite
    python tools/measure_coverage.py --min 60        # exit 1 below 60%

The denominator is every executable line (``co_lines`` of each compiled
code object, nested ones included) of every module under ``src/repro``;
the numerator is the lines the traced pytest run actually executed.
Forked child processes (the live cluster tests) are not traced, so this
underestimates what CI's pytest-cov reports — which is the safe
direction for picking ``--cov-fail-under``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from pathlib import Path
from typing import Dict, Set

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PKG = SRC / "repro"

_executed: Dict[str, Set[int]] = {}
_prefix = str(PKG) + "/"


def _local_trace(frame, event, arg):
    if event == "line":
        _executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    if event == "call":
        fname = frame.f_code.co_filename
        if fname.startswith(_prefix):
            _executed.setdefault(fname, set())
            return _local_trace
    return None


def executable_lines(path: Path) -> Set[int]:
    """All line numbers the compiler marks executable, nested code
    objects (functions, comprehensions, classes) included."""
    code = compile(path.read_text(), str(path), "exec")
    lines: Set[int] = set()
    stack = [code]
    while stack:
        co = stack.pop()
        lines.update(ln for _, _, ln in co.co_lines() if ln is not None)
        stack.extend(c for c in co.co_consts if hasattr(c, "co_lines"))
    return lines


def run(pytest_args, min_percent=None, json_out=None) -> int:
    sys.path.insert(0, str(SRC))
    import pytest

    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"pytest failed (exit {exit_code}); coverage not meaningful",
              file=sys.stderr)
        return int(exit_code)

    per_file = {}
    total_exec = total_hit = 0
    for path in sorted(PKG.rglob("*.py")):
        lines = executable_lines(path)
        hit = _executed.get(str(path), set()) & lines
        total_exec += len(lines)
        total_hit += len(hit)
        rel = str(path.relative_to(REPO))
        pct = 100.0 * len(hit) / len(lines) if lines else 100.0
        per_file[rel] = {"lines": len(lines), "hit": len(hit),
                         "percent": round(pct, 1)}

    percent = 100.0 * total_hit / total_exec if total_exec else 100.0
    width = max(len(f) for f in per_file)
    for rel, stats in per_file.items():
        print(f"{rel:<{width}}  {stats['hit']:>5}/{stats['lines']:<5} "
              f"{stats['percent']:>5.1f}%")
    print(f"{'TOTAL':<{width}}  {total_hit:>5}/{total_exec:<5} "
          f"{percent:>5.1f}%")
    if json_out:
        Path(json_out).write_text(json.dumps(
            {"percent": round(percent, 2), "files": per_file}, indent=1))
        print(f"wrote {json_out}")
    if min_percent is not None and percent < min_percent:
        print(f"FAIL: coverage {percent:.1f}% is below the floor "
              f"{min_percent:.1f}%", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--min", type=float, default=None,
                        help="exit non-zero if total coverage falls below "
                             "this percentage")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write a JSON report here")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments after `--` go to pytest verbatim "
                             '(default: -q -p no:randomly -m "not slow")')
    args = parser.parse_args()
    pytest_args = args.pytest_args or ["-q", "-p", "no:randomly",
                                       "-m", "not slow"]
    return run(pytest_args, args.min, args.json_out)


if __name__ == "__main__":
    sys.exit(main())
