"""Figure 14 (Appendix B.1): InceptionV3 under Poseidon-style WFBP at
1 Gbps — wait-free backprop still produces bursty, poorly utilized
traffic under bandwidth constraints."""

from __future__ import annotations

from repro.analysis import fig14_poseidon_utilization

from conftest import run_once


def test_fig14_poseidon_utilization(benchmark, report):
    fig = run_once(benchmark, fig14_poseidon_utilization)
    report(fig)
    peak = fig.notes["outbound_peak_gbps"]
    mean = fig.notes["outbound_mean_gbps"]
    print(f"paper: bursty even with WFBP | measured peak {peak:.2f} Gbps, "
          f"mean {mean:.2f} Gbps, idle {fig.notes['outbound_idle_frac']:.2f}")
    assert peak <= 1.0 * 1.05                      # respects the 1 Gbps cap
    assert peak > 0.9                              # saturating bursts...
    assert fig.notes["outbound_idle_frac"] > 0.05  # ...with idle valleys
