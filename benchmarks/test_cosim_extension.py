"""Extension benchmark: four-system time-to-accuracy comparison.

Generalizes the paper's Figure 15 to every system it discusses, on one
co-simulated axis: real training trajectories (exact sync for
baseline/P3, top-k DGC, stale ASGD) placed on wall-clock from the event
simulator at 1 Gbps (the paper's Appendix B.2 network).

Expected shape: baseline and P3 share the accuracy curve but P3's clock
runs faster; DGC iterates fastest but converges below exact sync; ASGD
iterates fast and converges lowest."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cosim import compare_systems, paper_systems
from repro.models import resnet110_cifar
from repro.sim import ClusterConfig
from repro.training import TrainConfig, make_dataset, small_cnn

from conftest import run_once


def test_four_system_time_to_accuracy(benchmark, report):
    dataset = make_dataset(n_train=2048, n_val=512, seed=0)
    sim_model = resnet110_cifar(batch_size=16)
    cluster = ClusterConfig(n_workers=4, bandwidth_gbps=1.0, seed=0)
    cfg = TrainConfig(n_workers=4, epochs=16, batch_size=64, lr=0.05, seed=3)

    def run():
        return compare_systems(
            paper_systems(dgc_density=0.01),
            lambda: small_cnn(np.random.default_rng(2)),
            dataset, sim_model, cluster, cfg)

    out = run_once(benchmark, run)
    print()
    print(f"{'system':>10} {'iter (ms)':>10} {'final acc':>10} "
          f"{'time to 80% (s)':>16}")
    for name, res in out.items():
        t80 = res.time_to_accuracy(0.80)
        t80_s = f"{t80:.1f}" if t80 is not None else "never"
        print(f"{name:>10} {res.iteration_time_mean * 1000:>10.1f} "
              f"{res.final_accuracy:>10.3f} {t80_s:>16}")

    # value semantics: baseline == p3 accuracy, p3 clock faster
    np.testing.assert_array_equal(out["baseline"].val_accuracy,
                                  out["p3"].val_accuracy)
    assert out["p3"].total_time < out["baseline"].total_time
    # exact sync converges highest; ASGD lowest of the sync-quality axis
    assert out["p3"].final_accuracy >= out["dgc"].final_accuracy
    assert out["p3"].final_accuracy > out["asgd"].final_accuracy
    # DGC's compressed pushes iterate fastest at 1 Gbps
    assert out["dgc"].iteration_time_mean < out["baseline"].iteration_time_mean
