"""Figure 7: throughput vs bandwidth for Baseline / Slicing / P3 on a
4-machine cluster — the paper's headline experiment.

Shape expectations (Section 5.3):
  (a) ResNet-50:    baseline degrades below ~6 Gbps, P3 holds to ~4 Gbps;
                    slicing alone ≈ baseline.  Peak speedup ~26%.
  (b) InceptionV3:  like ResNet-50; peak speedup ~18%.
  (c) VGG-19:       slicing alone gives a large win (one 102.8M-param
                    layer); P3 adds more.  Peak speedup ~66%.
  (d) Sockeye:      heavy *first* layer; P3 wins via bidirectional
                    overlap.  Peak speedup ~38%.
"""

from __future__ import annotations

import pytest

from repro.analysis import fig7_bandwidth_sweep
from repro.analysis.series import speedup

from conftest import run_once
from paper_expectations import PAPER_PEAK_SPEEDUP


def _run_panel(benchmark, report, model_name, check):
    fig = run_once(benchmark,
                   lambda: fig7_bandwidth_sweep(model_name, iterations=5))
    report(fig)
    ratio = speedup(fig, over="baseline", of="p3")
    print(f"paper peak speedup: {PAPER_PEAK_SPEEDUP[model_name]:.2f}x | "
          f"measured: {fig.notes['max_p3_speedup']:.2f}x "
          f"at {fig.notes['max_p3_speedup_at_gbps']:g} Gbps")
    check(fig, ratio)


def test_fig07a_resnet50(benchmark, report):
    def check(fig, ratio):
        assert fig.notes["max_p3_speedup"] > 1.15
        # P3 >= baseline everywhere
        assert (ratio.y >= 0.97).all()
        # slicing alone ≈ baseline (small layers)
        s = speedup(fig, over="baseline", of="slicing")
        assert s.y.max() < 1.2
    _run_panel(benchmark, report, "resnet50", check)


def test_fig07b_inceptionv3(benchmark, report):
    def check(fig, ratio):
        assert fig.notes["max_p3_speedup"] > 1.10
        s = speedup(fig, over="baseline", of="slicing")
        assert s.y.max() < 1.25
    _run_panel(benchmark, report, "inceptionv3", check)


def test_fig07c_vgg19(benchmark, report):
    def check(fig, ratio):
        assert fig.notes["max_p3_speedup"] > 1.4
        # slicing alone already provides a large share of the gain
        s = speedup(fig, over="baseline", of="slicing")
        assert s.y.max() > 1.3
    _run_panel(benchmark, report, "vgg19", check)


def test_fig07d_sockeye(benchmark, report):
    def check(fig, ratio):
        assert fig.notes["max_p3_speedup"] > 1.1
    _run_panel(benchmark, report, "sockeye", check)


def test_fig07_crossovers_resnet50(benchmark, report):
    """The paper's crossover claim: baseline plateau ends ~6 Gbps,
    P3's ~4 Gbps."""
    fig = run_once(benchmark, lambda: fig7_bandwidth_sweep(
        "resnet50", bandwidths=(3, 4, 5, 6, 7, 8), iterations=5))
    report(fig, "fig7_crossover.csv")
    base, fast = fig.get("baseline"), fig.get("p3")
    plateau = 104.0
    print(f"paper: baseline drops <6 Gbps, P3 holds to 4 Gbps | measured: "
          f"baseline@6={base.y_at(6):.0f}, baseline@4={base.y_at(4):.0f}, "
          f"p3@4={fast.y_at(4):.0f} (plateau {plateau:.0f})")
    assert base.y_at(6) > 0.90 * plateau
    assert base.y_at(4) < 0.85 * plateau
    assert fast.y_at(4) > 0.93 * plateau
