"""Microbenchmarks of the library's hot paths (real pytest-benchmark
timing with multiple rounds, unlike the figure regenerations).

These guard the simulator's practicality: a Figure-7 panel is ~60
simulations, so event throughput is what makes the reproduction
interactive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.slicing import slice_model
from repro.models import resnet50, vgg19
from repro.sim import ClusterConfig, simulate
from repro.sim.engine import Simulator
from repro.strategies import p3
from repro.training.dgc import DGCCompressor, DGCConfig
from repro.training.im2col import im2col


def test_engine_event_throughput(benchmark):
    """Schedule+run 20k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 20_000


def test_slicing_throughput(benchmark):
    """Slice VGG-19 (2874 slices) repeatedly."""
    model = vgg19()
    slices = benchmark(slice_model, model, 50_000)
    assert len(slices) > 2500


def test_resnet50_simulation_wallclock(benchmark):
    """One full ResNet-50 P3 simulation at 4 Gbps (the Figure-7 unit)."""
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=4.0)

    def run():
        return simulate(resnet50(), p3(), cfg, iterations=4, warmup=1)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.throughput > 0


def test_im2col_throughput(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 8, 16, 16))
    cols = benchmark(im2col, x, 3, 1, 1)
    assert cols.shape == (32 * 16 * 16, 8 * 9)


def test_dgc_compression_throughput(benchmark):
    rng = np.random.default_rng(0)
    grads = {f"l{i}": rng.normal(size=10_000) for i in range(10)}
    comp = DGCCompressor(DGCConfig(density=0.01, warmup_epochs=0,
                                   warmup_densities=()))

    def run():
        return comp.compress({k: g.copy() for k, g in grads.items()}, 0.01)

    out = benchmark(run)
    assert len(out) == 10
