"""Extension benchmark: ByteScheduler-style credit flow control.

ByteScheduler (SOSP'19, the direct successor of P3) added credit-based
flow control on top of priority scheduling.  This bench reproduces its
rationale inside our substrate: credits cost throughput when the edge
NIC is the only queue (the window idles the pipe), but win once an
oversubscribed FIFO core — which ignores end-host priorities — is where
backlog builds."""

from __future__ import annotations

from repro.analysis.series import FigureData
from repro.models import resnet50, vgg19
from repro.sim import ClusterConfig, simulate
from repro.strategies import credit_p3, p3

from conftest import run_once


def test_credit_window_sweep(benchmark, report):
    model = resnet50()
    credits = (1, 2, 4, 8, 16, 64)

    def run():
        fig = FigureData("ext_credit",
                         "Credit window vs throughput (resnet50 @ 4 Gbps)",
                         "credit (slices in flight)", "images/s per worker")
        for ov, label in ((1.0, "edge_bottleneck"), (2.0, "core_bottleneck")):
            cfg = ClusterConfig(n_workers=4, bandwidth_gbps=4.0,
                                oversubscription=ov)
            plain = simulate(model, p3(), cfg, iterations=4, warmup=1)
            ys = [simulate(model, credit_p3(c), cfg, iterations=4,
                           warmup=1).throughput / 4 for c in credits]
            fig.add(label, [float(c) for c in credits], ys)
            fig.notes[f"{label}_p3_plain"] = round(plain.throughput / 4, 1)
        return fig

    fig = run_once(benchmark, run)
    report(fig)
    edge = fig.get("edge_bottleneck")
    core = fig.get("core_bottleneck")
    print(f"plain P3: edge {fig.notes['edge_bottleneck_p3_plain']}, "
          f"core {fig.notes['core_bottleneck_p3_plain']} im/s/worker")
    # At the edge, larger credit -> converges up to plain P3.
    assert edge.y[-1] > edge.y[0]
    assert edge.y[-1] == float(edge.y.max())
    # Under the core bottleneck, a finite window beats an infinite one.
    assert core.y.max() > fig.notes["core_bottleneck_p3_plain"]
    best_core = core.x[core.y.argmax()]
    print(f"best core-bottleneck credit: {best_core:.0f} slices "
          f"({core.y.max():.1f} vs plain {fig.notes['core_bottleneck_p3_plain']})")
    assert 2 <= best_core <= 32
