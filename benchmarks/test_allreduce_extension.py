"""Extension benchmark (beyond the paper): P3's principles applied to
ring-allreduce aggregation, per the paper's Section 6 generality claim.

Compares Horovod/DDP-style 25 MB fused FIFO bucketing against priority
launch order (ByteScheduler-style) with and without slicing, and sweeps
the slice size — the allreduce analogue of Figure 12.  Finding: priority
+ slicing wins, but the optimal slice (~4-8 MB) is far coarser than the
PS optimum (200 KB) because a ring collective pays its fixed overhead
2(W-1) times per op."""

from __future__ import annotations

import pytest

from repro.allreduce import (
    AllreduceConfig,
    framework_bucketing,
    priority_allreduce,
    simulate_allreduce,
    unsliced_priority_allreduce,
)
from repro.analysis.series import FigureData
from repro.models import get_model

from conftest import run_once


@pytest.mark.parametrize("model_name", ("resnet50", "vgg19", "sockeye"))
def test_allreduce_strategies(benchmark, report, model_name):
    model = get_model(model_name)
    cfg = AllreduceConfig(n_workers=4, bandwidth_gbps=10.0)

    def run():
        out = {}
        for strat in (framework_bucketing(), unsliced_priority_allreduce(),
                      priority_allreduce()):
            out[strat.name] = simulate_allreduce(model, strat, cfg,
                                                 iterations=5, warmup=2)
        return out

    out = run_once(benchmark, run)
    print()
    base = out["allreduce_fifo"].throughput
    for name, r in out.items():
        print(f"  {name:25s} {r.throughput / 4:7.1f} {model.sample_unit}/s/worker "
              f"({r.throughput / base:.2f}x, {r.n_buckets} buckets)")
    assert out["allreduce_p3"].throughput >= base * 0.98
    if model_name == "vgg19":
        assert out["allreduce_p3"].throughput > base * 1.1


def test_allreduce_slice_sweep(benchmark, report):
    """Allreduce analogue of Figure 12: interior optimum, coarser than PS."""
    model = get_model("vgg19")
    cfg = AllreduceConfig(n_workers=4, bandwidth_gbps=10.0)
    sizes = (200_000, 1_000_000, 4_000_000, 16_000_000, 64_000_000)

    def run():
        fig = FigureData("ext_allreduce_slice",
                         "Allreduce slice size vs throughput (vgg19 @ 10 Gbps)",
                         "slice size (bytes)", "images/s per worker")
        ys = [simulate_allreduce(model, priority_allreduce(s), cfg,
                                 iterations=5, warmup=2).throughput / 4
              for s in sizes]
        fig.add("allreduce_p3", [float(s) for s in sizes], ys)
        return fig

    fig = run_once(benchmark, run)
    report(fig)
    s = fig.get("allreduce_p3")
    best = s.x[s.y.argmax()]
    print(f"best allreduce slice in sweep: {best / 1e6:.0f} MB "
          f"(PS optimum was 0.2 MB = 50k params; curve saturates above a "
          f"few MB)")
    # Sub-MB slices pay heavy per-collective overhead...
    assert s.y_at(200_000) < 0.8 * s.y.max()
    # ...and the useful granularity is >= 1 MB, far coarser than the PS.
    assert best >= 1_000_000
