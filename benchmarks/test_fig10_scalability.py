"""Figure 10: throughput scaling on 2/4/8/16 machines at 10 Gbps
(AWS g3.4xlarge calibration).

Paper shape: ResNet-50 ≈ parity (10 Gbps suffices); VGG-19 gains up to
61% (8 machines); Sockeye gains ~18%."""

from __future__ import annotations

import pytest

from repro.analysis import fig10_scalability

from conftest import run_once
from paper_expectations import (
    PAPER_SOCKEYE_SCALABILITY_GAIN,
    PAPER_VGG_SCALABILITY_GAIN,
)


def test_fig10a_resnet50(benchmark, report):
    fig = run_once(benchmark, lambda: fig10_scalability("resnet50", iterations=5))
    report(fig)
    print(f"paper: near-linear for both | measured p3 scaling efficiency "
          f"{fig.notes['scaling_efficiency_p3']:.2f}, max speedup "
          f"{fig.notes['max_p3_speedup']:.2f}x")
    assert fig.notes["scaling_efficiency_p3"] > 0.9
    assert fig.notes["max_p3_speedup"] < 1.25  # near parity at 10 Gbps


def test_fig10b_vgg19(benchmark, report):
    fig = run_once(benchmark, lambda: fig10_scalability("vgg19", iterations=5))
    report(fig)
    print(f"paper: up to {PAPER_VGG_SCALABILITY_GAIN:.2f}x | measured "
          f"{fig.notes['max_p3_speedup']:.2f}x at "
          f"{fig.notes['max_p3_speedup_at_size']} machines")
    assert fig.notes["max_p3_speedup"] > 1.25
    # baseline scales worse than P3
    assert (fig.notes["scaling_efficiency_p3"]
            > fig.notes["scaling_efficiency_baseline"])


def test_fig10c_sockeye(benchmark, report):
    fig = run_once(benchmark, lambda: fig10_scalability("sockeye", iterations=5))
    report(fig)
    print(f"paper: up to {PAPER_SOCKEYE_SCALABILITY_GAIN:.2f}x | measured "
          f"{fig.notes['max_p3_speedup']:.2f}x")
    assert fig.notes["max_p3_speedup"] > 1.0
