"""Extension benchmark: P3 on a modern transformer LM workload.

The paper predates transformers; this asks whether its conclusions
carry over.  A GPT-2-small-like model has the Sockeye pathology at 10x
scale: a ~38M-parameter token embedding consumed *first* each iteration
but produced *last* in backprop, plus an equally large LM head at the
other end."""

from __future__ import annotations

from repro.analysis.series import FigureData
from repro.models import transformer_lm
from repro.sim import ClusterConfig, simulate
from repro.strategies import baseline, p3, slicing_only

from conftest import run_once


def test_transformer_bandwidth_sweep(benchmark, report):
    model = transformer_lm()

    def run():
        fig = FigureData("ext_transformer",
                         "Transformer LM: bandwidth vs throughput",
                         "bandwidth (Gbps)", "sequences/s per worker")
        for strat in (baseline(), slicing_only(), p3()):
            ys = []
            for bw in (5.0, 10.0, 20.0, 40.0):
                cfg = ClusterConfig(n_workers=4, bandwidth_gbps=bw)
                r = simulate(model, strat, cfg, iterations=5, warmup=2)
                ys.append(r.throughput / 4)
            fig.add(strat.name, [5.0, 10.0, 20.0, 40.0], ys)
        return fig

    fig = run_once(benchmark, run)
    report(fig)
    base, fast = fig.get("baseline"), fig.get("p3")
    gain = (fast.y / base.y).max()
    print(f"P3 peak speedup on transformer LM: {gain:.2f}x")
    assert gain > 1.1  # the paper's conclusions carry over


def test_transformer_tied_vs_untied(benchmark):
    """Weight tying halves the embedding traffic — how much of P3's win
    does it absorb?"""
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=10.0)

    def run():
        out = {}
        for tied in (False, True):
            model = transformer_lm(tied_head=tied)
            b = simulate(model, baseline(), cfg, iterations=5, warmup=2)
            f = simulate(model, p3(), cfg, iterations=5, warmup=2)
            out[tied] = (b.throughput / 4, f.throughput / 4)
        return out

    out = run_once(benchmark, run)
    print()
    for tied, (b, f) in out.items():
        label = "tied" if tied else "untied"
        print(f"  {label:7s} baseline={b:6.2f} p3={f:6.2f} seq/s/worker "
              f"({f / b:.2f}x)")
    # Tying reduces bytes, so both get faster; P3 still helps both.
    assert out[True][1] >= out[False][1]
    assert out[True][1] >= out[True][0]
