"""Figure 8: baseline network-utilization traces (bwm-ng methodology).

Paper: bursty traffic with regular peaks and dominant idle time for
VGG-19/Sockeye; inbound and outbound not overlapped."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import FIG8_9_CONFIGS, fig8_baseline_utilization

from conftest import run_once


@pytest.mark.parametrize("model_name", sorted(FIG8_9_CONFIGS))
def test_fig08_baseline_utilization(benchmark, report, model_name):
    fig = run_once(benchmark, lambda: fig8_baseline_utilization(model_name))
    report(fig, f"fig8_{model_name}.csv")
    out_idle = fig.notes["outbound_idle_frac"]
    peak = fig.notes["outbound_peak_gbps"]
    mean = fig.notes["outbound_mean_gbps"]
    print(f"{model_name}: peak {peak:.2f} Gbps, mean {mean:.2f} Gbps, "
          f"idle fraction {out_idle:.2f}")
    bandwidth = FIG8_9_CONFIGS[model_name]
    # Bursty: transmissions saturate the throttled link during peaks...
    assert peak > 0.9 * bandwidth
    # ...yet the link sits idle a substantial fraction of the iteration.
    assert out_idle > 0.15
