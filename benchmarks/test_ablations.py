"""Ablation benchmarks (beyond the paper's figures; DESIGN.md Section 6).

These quantify how much each of P3's design choices contributes."""

from __future__ import annotations

import pytest

from repro.analysis import (
    colocation_ablation,
    component_ablation,
    latency_sensitivity,
    priority_policy_ablation,
)

from conftest import run_once


def test_ablation_components_vgg19(benchmark):
    """Slicing vs priority vs both, on the model where both matter."""
    out = run_once(benchmark, lambda: component_ablation("vgg19", 15.0))
    print()
    for name, tput in out.items():
        print(f"  {name:15s} {tput:6.1f} images/s/worker "
              f"({tput / out['baseline']:.2f}x)")
    assert out["p3"] >= out["slicing"] * 0.98
    assert out["slicing"] > out["baseline"] * 1.2


def test_ablation_components_resnet50(benchmark):
    """On small-layer models priority does the work, not slicing."""
    out = run_once(benchmark, lambda: component_ablation("resnet50", 4.0))
    print()
    for name, tput in out.items():
        print(f"  {name:15s} {tput:6.1f} images/s/worker "
              f"({tput / out['baseline']:.2f}x)")
    assert out["p3"] > out["baseline"] * 1.1
    assert out["slicing"] < out["baseline"] * 1.15


def test_ablation_priority_policies(benchmark):
    """Consumption-order priorities beat reverse/random/uniform."""
    fig = run_once(benchmark, lambda: priority_policy_ablation(
        "resnet50", 4.0, policies=("forward", "reverse", "random", "uniform")))
    print()
    for label in fig.labels:
        print(f"  {label:10s} {fig.notes[label]:6.1f} images/s/worker")
    assert fig.notes["forward"] >= fig.notes["reverse"]
    assert fig.notes["forward"] >= fig.notes["random"] * 0.999
    assert fig.notes["forward"] >= fig.notes["uniform"] * 0.999


def test_ablation_latency(benchmark, report):
    """P3's gains are bandwidth-scheduling gains: robust to latency."""
    fig = run_once(benchmark, lambda: latency_sensitivity(
        "resnet50", 4.0, latencies_us=(10, 50, 200, 1000)))
    report(fig, "ablation_latency.csv")
    p3_series = fig.get("p3")
    assert p3_series.y.min() > 0.75 * p3_series.y.max()


def test_ablation_server_count(benchmark, report):
    """Incast: fewer PS shards concentrate traffic on fewer NICs."""
    from repro.analysis import server_count_sweep
    fig = run_once(benchmark, lambda: server_count_sweep("vgg19", (1, 2, 4)))
    report(fig)
    print(f"P3 gain from full sharding (1 -> 4 shards): "
          f"{fig.notes['p3_full_sharding_gain']:.2f}x")
    # More shards never hurt; with one shard its NIC is the bottleneck.
    fast = fig.get("p3")
    assert fast.y[-1] > fast.y[0]
    assert fig.notes["p3_full_sharding_gain"] > 1.5


def test_ablation_colocation(benchmark):
    """Dedicated PS machines relieve the shared NIC but cost hardware."""
    out = run_once(benchmark, lambda: colocation_ablation("vgg19", 15.0))
    print()
    for mode, strat in out.items():
        print(f"  {mode:10s} baseline={strat['baseline']:6.1f} "
              f"p3={strat['p3']:6.1f} images/s/worker")
    # Observational ablation: no general ordering holds (dedicated
    # servers double aggregate PS bandwidth but concentrate incast of
    # the baseline's batched per-layer pulls).  P3, which streams slices
    # and broadcasts, is insensitive to the deployment choice.
    p3_ratio = out["dedicated"]["p3"] / out["colocated"]["p3"]
    assert 0.9 <= p3_ratio <= 1.15
