"""Figure 15 (Appendix B.2): accuracy vs wall-clock, P3 vs ASGD at
1 Gbps.

Paper: P3 reaches 93% final accuracy vs 88% for ASGD, and hits 80%
roughly 6x sooner.  ASGD iterates faster (no barrier) but staleness
costs accuracy."""

from __future__ import annotations

from repro.analysis import fig15_asgd_vs_p3

from conftest import run_once
from paper_expectations import PAPER_ASGD_FINAL, PAPER_P3_FINAL


def test_fig15_asgd_vs_p3(benchmark, report):
    fig = run_once(benchmark, lambda: fig15_asgd_vs_p3(epochs=16))
    report(fig)
    print(f"paper: P3 {PAPER_P3_FINAL:.2f} vs ASGD {PAPER_ASGD_FINAL:.2f} final | "
          f"measured: P3 {fig.notes['p3_final']:.3f} vs "
          f"ASGD {fig.notes['asgd_final']:.3f}")
    if "asgd_to_p3_time_ratio" in fig.notes:
        print(f"paper: P3 ~6x faster to 80% | measured ratio "
              f"{fig.notes['asgd_to_p3_time_ratio']:.1f}x")
    # Shape: sync converges higher; async iterates no slower per step.
    assert fig.notes["p3_final"] > fig.notes["asgd_final"]
    assert fig.notes["asgd_iter_time_s"] <= fig.notes["p3_iter_time_s"] * 1.05
