"""Extension benchmark: shared-tenant clusters and stragglers.

Section 5.3 argues P3 suits shared clusters, "where effective bandwidth
available for a single training process is much lower than the maximum
capacity of the network"; Section 5.5 notes variable iteration times
hurt synchronous scaling.  These benches quantify both."""

from __future__ import annotations

from repro.analysis import shared_cluster_sweep, straggler_sensitivity

from conftest import run_once


def test_shared_cluster_contention(benchmark, report):
    fig = run_once(benchmark, lambda: shared_cluster_sweep(
        "resnet50", bandwidth_gbps=6.0, loads=(0.0, 0.2, 0.4, 0.6)))
    report(fig)
    print(f"P3 speedup: unloaded {fig.notes['speedup_unloaded']:.2f}x -> "
          f"loaded {fig.notes['speedup_loaded']:.2f}x")
    # P3's relative advantage holds or grows under contention.
    assert fig.notes["speedup_loaded"] >= fig.notes["speedup_unloaded"] - 0.03
    # Contention hurts everyone in absolute terms.
    base = fig.get("baseline")
    assert base.y[-1] < base.y[0]


def test_straggler_sensitivity(benchmark, report):
    fig = run_once(benchmark, lambda: straggler_sensitivity(
        "resnet50", slow_factors=(1.0, 1.5, 2.0)))
    report(fig)
    sync = fig.get("baseline")
    async_ = fig.get("asgd")
    print(f"with a 2x straggler: sync {sync.y_at(2.0):.0f}/s vs "
          f"asgd {async_.y_at(2.0):.0f}/s per worker")
    # Synchronous throughput tracks the slowest worker; ASGD does not.
    assert sync.y_at(2.0) < 0.65 * sync.y_at(1.0)
    assert async_.y_at(2.0) > sync.y_at(2.0) * 1.2
