"""Figure 9: P3's network-utilization traces.

Paper: vs Figure 8, idle time shrinks, peaks flatten, and bidirectional
bandwidth is used simultaneously."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import FIG8_9_CONFIGS, fig8_baseline_utilization, fig9_p3_utilization

from conftest import run_once


@pytest.mark.parametrize("model_name", sorted(FIG8_9_CONFIGS))
def test_fig09_p3_vs_baseline_utilization(benchmark, report, model_name):
    p3_fig = run_once(benchmark, lambda: fig9_p3_utilization(model_name))
    base_fig = fig8_baseline_utilization(model_name)
    report(p3_fig, f"fig9_{model_name}.csv")
    print(f"{model_name}: idle frac baseline={base_fig.notes['outbound_idle_frac']:.2f} "
          f"-> p3={p3_fig.notes['outbound_idle_frac']:.2f}; "
          f"iteration {base_fig.notes['iteration_time_s']:.3f}s "
          f"-> {p3_fig.notes['iteration_time_s']:.3f}s")
    # P3 reduces idle time and the iteration gets faster (or no slower).
    assert p3_fig.notes["outbound_idle_frac"] <= base_fig.notes["outbound_idle_frac"] + 0.02
    assert p3_fig.notes["iteration_time_s"] <= base_fig.notes["iteration_time_s"] * 1.01
