"""Robustness benchmark: the reproduction's headline conclusion under
order-of-magnitude sweeps of every calibrated cost constant
(docs/calibration.md argues the conclusions depend on byte volumes and
overlap windows, not these knobs — this verifies it)."""

from __future__ import annotations

from repro.analysis import sensitivity_scan

from conftest import run_once


def test_sensitivity_of_headline_speedup(benchmark, report):
    fig = run_once(benchmark, lambda: sensitivity_scan(
        "resnet50", bandwidth_gbps=4.0, iterations=4))
    report(fig)
    print(f"P3 speedup across all knob sweeps: "
          f"{fig.notes['min_speedup']:.2f}x .. {fig.notes['max_speedup']:.2f}x")
    for label in fig.labels:
        print(f"  {label:20s} speedup range {fig.notes[f'{label}_range']:.3f}")
    # The conclusion survives every sweep.
    assert fig.notes["min_speedup"] > 1.05
