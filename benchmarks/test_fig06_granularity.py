"""Figure 6: layer-level vs fine-grained synchronization of a model with
one disproportionately heavy layer.  Paper: slicing pipelines receive /
update / send and cuts communication cost ~30%."""

from __future__ import annotations

from repro.analysis import fig6_granularity_comparison, schedule_figure

from conftest import run_once


def test_fig06_granularity(benchmark, report):
    out = run_once(benchmark, fig6_granularity_comparison)
    fig = schedule_figure(out, "fig6", "Toy granularity: layer vs sliced")
    report(fig)
    coarse, fine = out["layer_granularity"], out["sliced"]
    saved = 1 - fine.stall_time / coarse.stall_time
    print(f"paper: ~30% communication saving | measured: stall "
          f"{coarse.stall_time:.2f}s -> {fine.stall_time:.2f}s "
          f"({saved * 100:.0f}% saving)")
    assert saved > 0.2
