"""Extension benchmark: where does P3's priority scheduling stop
helping?

Two deployments the paper does not evaluate:

1. **Oversubscribed core**: all cross traffic shares a FIFO switch
   fabric.  Once the core — which cannot honour end-host priorities —
   is the bottleneck, P3 degrades to baseline; the paper's gains assume
   the edge NIC is where queueing happens (true for its testbed).
2. **Compression stacked on P3** (Section 6's orthogonality note): at
   1 Gbps, 1%-density compression on top of P3 recovers the compute
   bound that neither achieves alone."""

from __future__ import annotations

from repro.analysis import oversubscription_sweep
from repro.models import vgg19
from repro.sim import ClusterConfig, simulate
from repro.strategies import baseline, p3, p3_with_compression

from conftest import run_once


def test_oversubscribed_core(benchmark, report):
    fig = run_once(benchmark, lambda: oversubscription_sweep(
        "resnet50", ratios=(1.0, 2.0, 4.0), bandwidth_gbps=8.0))
    report(fig)
    print(f"P3 speedup: edge-bottleneck "
          f"{fig.notes['speedup_at_edge_bottleneck']:.2f}x -> core-bottleneck "
          f"{fig.notes['speedup_at_core_bottleneck']:.2f}x")
    # When the FIFO core binds, priority scheduling cannot help.
    assert fig.notes["speedup_at_core_bottleneck"] < 1.10
    assert fig.get("baseline").y[-1] < fig.get("baseline").y[0]


def test_compression_on_top_of_p3(benchmark):
    cfg = ClusterConfig(n_workers=4, bandwidth_gbps=1.0)
    model = vgg19()

    def run():
        out = {}
        for strat in (baseline(), p3(), p3_with_compression(0.01)):
            out[strat.name] = simulate(model, strat, cfg,
                                       iterations=4, warmup=1).throughput / 4
        return out

    out = run_once(benchmark, run)
    print()
    for name, tput in out.items():
        print(f"  {name:15s} {tput:6.1f} images/s/worker")
    # Compression composes with P3 and dwarfs scheduling alone at 1 Gbps.
    assert out["p3_compressed"] > 5.0 * out["p3"]
    assert out["p3"] > out["baseline"]
