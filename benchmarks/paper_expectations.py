"""Qualitative expectations extracted from the paper, used by the
benchmarks to check the *shape* of each regenerated figure (who wins,
by roughly what factor, where crossovers fall).  Absolute values are not
expected to match: the substrate is a simulator, not the authors'
P4000/InfiniBand testbed (see DESIGN.md)."""

# Abstract / Section 5.3: maximum P3-over-baseline speedups.
PAPER_PEAK_SPEEDUP = {
    "resnet50": 1.25,
    "inceptionv3": 1.18,
    "vgg19": 1.66,
    "sockeye": 1.38,
}

# Section 5.3: where the baseline starts degrading (Gbps).
PAPER_BASELINE_CROSSOVER_GBPS = {"resnet50": 6.0}
PAPER_P3_CROSSOVER_GBPS = {"resnet50": 4.0}

# Section 5.7: optimal slice size (parameters).
PAPER_BEST_SLICE = 50_000

# Section 5.6: average DGC final-accuracy drop vs P3.
PAPER_DGC_ACCURACY_DROP = 0.004

# Appendix B.2: final accuracies and time-to-80% ratio.
PAPER_ASGD_FINAL = 0.88
PAPER_P3_FINAL = 0.93
PAPER_ASGD_TIME_TO_80_RATIO = 6.0

# Section 5.5: P3's VGG-19 peak scalability gain (8 machines).
PAPER_VGG_SCALABILITY_GAIN = 1.61
PAPER_SOCKEYE_SCALABILITY_GAIN = 1.18
