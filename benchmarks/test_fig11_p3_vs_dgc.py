"""Figure 11: validation-accuracy bands, P3 (exact sync) vs Deep
Gradient Compression, over five hyper-parameter settings.

Paper: P3's final accuracy is always >= DGC's; average drop ~0.4%.
Substitution: small CNN on synthetic data standing in for
ResNet-110/CIFAR-10 (same ~93% accuracy regime); DGC density scaled to
1% because the substitute model is ~200x smaller (see DESIGN.md)."""

from __future__ import annotations

from repro.analysis import fig11_p3_vs_dgc

from conftest import run_once
from paper_expectations import PAPER_DGC_ACCURACY_DROP


def test_fig11_p3_vs_dgc(benchmark, report):
    fig = run_once(benchmark, lambda: fig11_p3_vs_dgc(epochs=16))
    report(fig)
    drop = fig.notes["mean_accuracy_drop"]
    print(f"paper: mean DGC accuracy drop ~{PAPER_DGC_ACCURACY_DROP * 100:.1f}% "
          f"| measured: {drop * 100:.2f}% "
          f"(p3 {fig.notes['p3_final_mean']:.3f} vs dgc {fig.notes['dgc_final_mean']:.3f})")
    # P3 is better on average, and its worst setting beats DGC's worst.
    assert drop > 0.0
    assert fig.notes["p3_final_worst"] >= fig.notes["dgc_final_worst"]
    # The gap stays small (same qualitative story as the paper).
    assert drop < 0.08
