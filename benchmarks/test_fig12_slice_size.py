"""Figure 12: throughput vs parameter-slice size.

Paper: throughput rises as slices shrink, peaks around 50,000 params,
then collapses when per-packet overheads dominate."""

from __future__ import annotations

import pytest

from repro.analysis import fig12_slice_size_sweep

from conftest import run_once
from paper_expectations import PAPER_BEST_SLICE

# VGG-19 at 1k-param slices needs ~10^7 events; start it at 3k.
GRIDS = {
    "resnet50": (1_000, 3_000, 10_000, 50_000, 200_000, 1_000_000),
    "vgg19": (3_000, 10_000, 50_000, 200_000, 1_000_000),
    "sockeye": (1_000, 3_000, 10_000, 50_000, 200_000, 1_000_000),
}


@pytest.mark.parametrize("model_name", sorted(GRIDS))
def test_fig12_slice_size(benchmark, report, model_name):
    fig = run_once(benchmark, lambda: fig12_slice_size_sweep(
        model_name, slice_sizes=GRIDS[model_name], iterations=4))
    report(fig)
    s = fig.get("p3")
    best = fig.notes["best_slice_size"]
    print(f"paper: optimum ~{PAPER_BEST_SLICE} params | measured optimum "
          f"{best} ({fig.notes['best_throughput']:.1f}/s)")
    # Interior optimum: the best size beats both the smallest and largest.
    assert s.y_at(best) >= s.y[0]
    assert s.y_at(best) >= s.y[-1]
    # Tiny slices are clearly harmful (per-message overhead dominates).
    assert s.y[0] < 0.9 * s.y_at(best)
    # The optimum is within an order of magnitude of the paper's 50k.
    assert 5_000 <= best <= 500_000
