"""Figure 13 (Appendix B.1): ResNet-50 under TensorFlow-style
synchronization at 4 Gbps — the same bursty under-utilization as MXNet's
baseline, because the deferred pull disconnects send and receive."""

from __future__ import annotations

from repro.analysis import fig13_tensorflow_utilization

from conftest import run_once


def test_fig13_tensorflow_utilization(benchmark, report):
    fig = run_once(benchmark, fig13_tensorflow_utilization)
    report(fig)
    peak = fig.notes["outbound_peak_gbps"]
    mean = fig.notes["outbound_mean_gbps"]
    print(f"paper: bursty traffic like MXNet | measured peak {peak:.2f} Gbps "
          f"(cap 4), mean {mean:.2f} Gbps, inbound idle "
          f"{fig.notes['inbound_idle_frac']:.2f}")
    # Bursty: saturating peaks with idle valleys.
    assert peak > 0.9 * 4.0
    # Inbound arrives disjointly from outbound (deferred pulls):
    assert fig.notes["inbound_idle_frac"] > 0.2
