"""Figure 4: aggressive vs priority-based synchronization on the toy
3-layer model.  Paper: priority scheduling halves the inter-iteration
delay and overlaps communication with both passes."""

from __future__ import annotations

from repro.analysis import fig4_schedule_comparison, schedule_figure

from conftest import run_once


def test_fig04_priority_vs_aggressive(benchmark, report):
    out = run_once(benchmark, fig4_schedule_comparison)
    fig = schedule_figure(out, "fig4", "Toy schedule: aggressive vs priority")
    report(fig)
    print(f"paper: delay halves (4u -> 2u) | measured: "
          f"baseline stall {out['baseline'].stall_time:.2f}s, "
          f"p3 stall {out['p3'].stall_time:.2f}s "
          f"({out['baseline'].stall_time / out['p3'].stall_time:.1f}x reduction)")
    assert out["p3"].stall_time < 0.6 * out["baseline"].stall_time
