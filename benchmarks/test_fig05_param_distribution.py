"""Figure 5: per-layer parameter distributions.  Paper facts: VGG-19's
fc6 weight holds 71.5% of the model; ResNet-50 has ~160 small arrays;
Sockeye's heaviest array is its first layer."""

from __future__ import annotations

from repro.analysis import fig5_param_distribution, skew_statistics
from repro.models import get_model

from conftest import run_once


def test_fig05_param_distribution(benchmark, report):
    fig = run_once(benchmark, fig5_param_distribution)
    report(fig)
    for name in ("resnet50", "vgg19", "sockeye"):
        stats = skew_statistics(name)
        print(f"{name:10s}: {int(stats['n_layers'])} arrays, "
              f"{stats['total_mparams']:.1f}M params, "
              f"max array share {stats['max_share'] * 100:.1f}%")
    assert skew_statistics("vgg19")["max_share"] > 0.70
    assert 155 <= skew_statistics("resnet50")["n_layers"] <= 165
    assert get_model("sockeye").heaviest_layer == 0
