"""Extension benchmark: iteration-time tails under jitter.

Section 5.5 attributes Sockeye's poor synchronous scaling to "difference
in iteration time in worker machines".  This bench quantifies the
barrier's tail amplification and what each scheme does about it, plus
multi-seed confidence intervals for the jitter-sensitive Sockeye
results."""

from __future__ import annotations

from repro.analysis import speedup_stats, tail_comparison, throughput_stats
from repro.strategies import baseline, p3

from conftest import run_once


def test_iteration_time_tails(benchmark, report):
    fig = run_once(benchmark, lambda: tail_comparison(
        "sockeye", bandwidth_gbps=4.0, iterations=30))
    report(fig)
    for label in fig.labels:
        print(f"  {label:10s} p99/p50 = {fig.notes[f'{label}_p99_over_p50']:.2f}")
    # P3 improves the median without worsening tail amplification much.
    p3_p50 = fig.get("p3").y[0]
    base_p50 = fig.get("baseline").y[0]
    assert p3_p50 < base_p50


def test_sockeye_speedup_with_confidence(benchmark):
    """The Sockeye speedup quoted in EXPERIMENTS.md, with a CI."""
    def run():
        return {
            "baseline": throughput_stats("sockeye", baseline(), 4.0,
                                         seeds=(0, 1, 2, 3, 4), iterations=5),
            "p3": throughput_stats("sockeye", p3(), 4.0,
                                   seeds=(0, 1, 2, 3, 4), iterations=5),
            "speedup": speedup_stats("sockeye", 4.0, seeds=(0, 1, 2, 3, 4),
                                     iterations=5),
        }

    out = run_once(benchmark, run)
    print()
    for name, stats in out.items():
        print(f"  {name:10s} {stats}")
    # The speedup is significantly above 1 (CI excludes parity).
    assert out["speedup"].lo > 1.0
