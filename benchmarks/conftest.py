"""Shared benchmark utilities.

Every benchmark regenerates one paper figure's data series, prints the
rows (visible with ``pytest benchmarks/ --benchmark-only -s`` or in the
captured output summary), and writes a CSV under ``results/`` so the
data survives the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Print a FigureData summary and persist it as CSV."""

    def _report(fig, filename: str | None = None) -> None:
        print()
        print(fig.summary())
        name = filename or f"{fig.figure_id}.csv"
        path = fig.to_csv(results_dir / name)
        print(f"[saved] {path}")

    return _report


def run_once(benchmark, fn):
    """Run an expensive figure regeneration exactly once under
    pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
