"""Functional proof of the paper's Section 5.6 claim: "the baseline and
P3 would follow the same training curve for a given hyper-parameter set".

P3 changes *when* gradient bytes move, never *what* they contain.  This
example routes real numpy gradients through two functional data planes —
MXNet-style KVStore placement (whole arrays, big ones threshold-split)
and P3's (50k-param slices, round-robin, priority-ordered transmission)
— and shows the resulting models are bit-identical, while the timing
simulator shows P3 finishing the same work sooner.

Run:  python examples/functional_equivalence.py
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, simulate
from repro.kvstore import BaselineKVStore, P3Store, train_with_store
from repro.models import resnet50
from repro.strategies import baseline as baseline_strategy
from repro.strategies import p3 as p3_strategy
from repro.training import TrainConfig, make_dataset, mlp


def main() -> None:
    dataset = make_dataset(n_train=512, n_val=128, seed=0)
    config = TrainConfig(n_workers=4, epochs=4, batch_size=64, lr=0.05, seed=7)

    def fresh_net():
        return mlp(np.random.default_rng(3), in_dim=16 * 16 * 3, hidden=32,
                   batchnorm=False)

    def fresh_store(cls, **kw):
        return cls(n_workers=4, n_servers=4, lr=config.lr,
                   momentum=config.momentum,
                   weight_decay=config.weight_decay, seed=1, **kw)

    print("training through the MXNet-style KVStore data plane ...")
    net_base = fresh_net()
    res_base = train_with_store(net_base, dataset,
                                fresh_store(BaselineKVStore), config)
    print("training through the P3 data plane (50k-param slices) ...")
    net_p3 = fresh_net()
    res_p3 = train_with_store(net_p3, dataset,
                              fresh_store(P3Store, slice_params=50_000), config)

    max_diff = float(np.abs(net_base.get_vector() - net_p3.get_vector()).max())
    print(f"\nmax |param difference| after training: {max_diff:.2e}")
    print(f"validation accuracy: baseline {res_base.val_accuracy[-1]:.3f}, "
          f"p3 {res_p3.val_accuracy[-1]:.3f}")
    assert max_diff < 1e-10

    # Same values — but not the same wall-clock.  The timing simulator
    # on the paper's ResNet-50 testbed shows what P3's reordering buys:
    cluster = ClusterConfig(n_workers=4, bandwidth_gbps=4.0)
    t_base = simulate(resnet50(), baseline_strategy(), cluster).mean_iteration_time
    t_p3 = simulate(resnet50(), p3_strategy(), cluster).mean_iteration_time
    print(f"\nsimulated iteration time (ResNet-50 @ 4 Gbps): "
          f"baseline {t_base * 1000:.0f} ms vs P3 {t_p3 * 1000:.0f} ms "
          f"({t_base / t_p3:.2f}x faster, identical results)")


if __name__ == "__main__":
    main()
