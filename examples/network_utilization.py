"""Network-utilization traces (the paper's Figures 8 and 9): compare the
baseline's bursty traffic against P3's smooth, overlapped usage.

Run:  python examples/network_utilization.py [model]
      python examples/network_utilization.py sockeye
"""

from __future__ import annotations

import sys

from repro.analysis import FIG8_9_CONFIGS, ascii_plot, utilization_trace
from repro.strategies import baseline, p3


def main(model_name: str = "sockeye") -> None:
    bandwidth = FIG8_9_CONFIGS.get(model_name, 4.0)
    for strategy in (baseline(), p3()):
        fig = utilization_trace(model_name, strategy, bandwidth,
                                figure_id=f"util_{strategy.name}")
        print(ascii_plot(fig, height=14))
        print(f"  outbound: peak {fig.notes['outbound_peak_gbps']:.2f} Gbps, "
              f"mean {fig.notes['outbound_mean_gbps']:.2f} Gbps, "
              f"idle {fig.notes['outbound_idle_frac'] * 100:.0f}% of bins")
        print(f"  iteration time: {fig.notes['iteration_time_s'] * 1000:.0f} ms")
        print()
    print("Expect: baseline shows tall bursts separated by idle valleys; "
          "P3 shows flatter, denser usage in both directions "
          "(paper Figures 8 vs 9).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "sockeye")
