"""Quickstart: simulate distributed training of ResNet-50 with and
without P3 on a bandwidth-constrained 4-machine cluster.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClusterConfig, simulate
from repro.models import resnet50
from repro.strategies import baseline, p3, slicing_only


def main() -> None:
    model = resnet50()
    print(model.describe())
    print()

    # The paper's testbed: 4 machines, each hosting a worker and a
    # parameter-server shard, throttled to 4 Gbps (Section 5.3).
    cluster = ClusterConfig(n_workers=4, bandwidth_gbps=4.0)

    results = {}
    for strategy in (baseline(), slicing_only(), p3()):
        result = simulate(model, strategy, cluster, iterations=6, warmup=2)
        results[strategy.name] = result
        print(f"{strategy.name:10s}: {result.throughput / 4:6.1f} images/s per worker "
              f"(iteration {result.mean_iteration_time * 1000:.0f} ms)")

    speedup = results["p3"].speedup_over(results["baseline"])
    print(f"\nP3 speedup over the MXNet-style baseline at 4 Gbps: "
          f"{(speedup - 1) * 100:.0f}%  (paper reports up to 25% for ResNet-50)")


if __name__ == "__main__":
    main()
