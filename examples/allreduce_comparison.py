"""P3's principles on ring allreduce (extension of the paper's Section 6
generality claim).

Compares the framework-default 25 MB fused FIFO bucketing (Horovod /
PyTorch DDP style) against priority launch order with sliced buckets
(ByteScheduler style), and sweeps the slice size — the allreduce
analogue of the paper's Figure 12.

Run:  python examples/allreduce_comparison.py [model]
"""

from __future__ import annotations

import sys

from repro.allreduce import (
    AllreduceConfig,
    framework_bucketing,
    priority_allreduce,
    simulate_allreduce,
    unsliced_priority_allreduce,
)
from repro.models import get_model


def main(model_name: str = "vgg19") -> None:
    model = get_model(model_name)
    cfg = AllreduceConfig(n_workers=4, bandwidth_gbps=10.0)

    print(f"== {model_name} on a 4-worker ring @ 10 Gbps ==")
    base = None
    for strategy in (framework_bucketing(), unsliced_priority_allreduce(),
                     priority_allreduce()):
        result = simulate_allreduce(model, strategy, cfg, iterations=6, warmup=2)
        if base is None:
            base = result
        print(f"{strategy.name:25s} {result.throughput / 4:8.1f} "
              f"{model.sample_unit}/s/worker  "
              f"({result.speedup_over(base):.2f}x, {result.n_buckets} buckets)")

    print("\n== slice-size sweep for priority allreduce ==")
    for mb in (0.2, 1, 4, 16, 64):
        strategy = priority_allreduce(bucket_bytes=int(mb * 1e6))
        result = simulate_allreduce(model, strategy, cfg, iterations=6, warmup=2)
        print(f"  {mb:5.1f} MB slices: {result.throughput / 4:8.1f} "
              f"{model.sample_unit}/s/worker")

    print("\nNote the useful granularity is much coarser than the parameter "
          "server's 50k params (0.2 MB): a ring collective pays its fixed "
          "overhead 2(W-1) times per op, so sub-MB slices hurt and the "
          "benefit saturates above a few MB.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vgg19")
