"""Render the paper's Figure-4 timelines as ASCII Gantt charts.

Recreates the worked example: a 3-layer model where every layer costs
one time unit per pass and roughly two units to synchronize, under the
aggressive baseline and under P3.  Rows show the worker's compute
segments and both NIC directions, drawn from real simulated events.

Run:  python examples/schedule_visualization.py
"""

from __future__ import annotations

from repro.analysis.schedules import _toy_cluster
from repro.models import fig4_model
from repro.sim import build_trace_events, simulate
from repro.strategies import baseline, p3


def gantt(events, t0: float, t1: float, width: int = 78) -> str:
    """ASCII Gantt: one row per (pid, tid) lane within [t0, t1]."""
    lanes = {}
    labels = {0: "compute", 1: "nic tx ", 2: "nic rx "}
    for e in events:
        start, end = e["ts"] / 1e6, (e["ts"] + e["dur"]) / 1e6
        if end <= t0 or start >= t1 or e["pid"] != 0:
            continue
        lane = lanes.setdefault(e["tid"], [" "] * width)
        a = int((max(start, t0) - t0) / (t1 - t0) * (width - 1))
        b = int((min(end, t1) - t0) / (t1 - t0) * (width - 1))
        if e["cat"] == "compute":
            char = "F" if e["name"].startswith("forward") else "B"
        elif e["cat"] == "stall":
            char = "."
        else:
            char = "#"
        for i in range(a, max(a + 1, b + 1)):
            lane[i] = char
    rows = []
    for tid in sorted(lanes):
        rows.append(f"  {labels.get(tid, str(tid)):8s}|" + "".join(lanes[tid]) + "|")
    return "\n".join(rows)


def main() -> None:
    model = fig4_model()
    for strategy in (baseline(), p3(slice_params=5_000)):
        result = simulate(model, strategy, _toy_cluster(), iterations=5,
                          warmup=2, trace_utilization=True)
        events = build_trace_events(result)
        recs = result.iterations.worker_iterations(0)
        t0 = recs[2].forward_start
        t1 = recs[3].end if len(recs) > 3 else result.steady_end
        stall = result.mean_iteration_time - model.iteration_compute_time()
        print(f"== {strategy.name}: one steady-state iteration "
              f"(iteration {result.mean_iteration_time:.1f}s, "
              f"stall {stall:.1f}s) ==")
        print(gantt(events, t0, t1))
        print("    F forward  B backward  . stall  # transfer\n")
    print("Compare with the paper's Figure 4: the baseline's forward row "
          "is stretched by waiting for FIFO-queued layer-0 parameters "
          "(its NIC drains in bursts with gaps), while P3's transfers "
          "hug both passes and the iteration is much shorter.")


if __name__ == "__main__":
    main()
