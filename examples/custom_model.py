"""Bring your own model: describe any DNN as a ModelSpec, then find its
P3 speedup and tune the slice size.

This walks through what a framework integration would do automatically:
enumerate parameter arrays in forward order, estimate per-layer compute,
and hand the result to the synchronization layer.  The example model is
a GPT-2-small-like transformer, a workload the paper predates.

Run:  python examples/custom_model.py
"""

from __future__ import annotations

from repro import ClusterConfig, simulate
from repro.models.base import LayerSpec, ModelSpec, dense_flops
from repro.strategies import baseline, p3


def transformer_lm(n_layers: int = 12, d_model: int = 768,
                   vocab: int = 50_257, seq: int = 1024) -> ModelSpec:
    """A decoder-only transformer described at parameter-array level."""
    layers = [
        # Embeddings are consumed first in the forward pass: with P3 they
        # get the highest priority — same situation as Sockeye (Fig 5c).
        LayerSpec("tok_embed", vocab * d_model, 2.0 * d_model * seq),
        LayerSpec("pos_embed", seq * d_model, 0.0),
    ]
    for i in range(n_layers):
        blk = f"block{i}"
        for name, params in (
            (f"{blk}_ln1", 2 * d_model),
            (f"{blk}_attn_qkv", d_model * 3 * d_model + 3 * d_model),
            (f"{blk}_attn_proj", d_model * d_model + d_model),
            (f"{blk}_ln2", 2 * d_model),
            (f"{blk}_mlp_fc", d_model * 4 * d_model + 4 * d_model),
            (f"{blk}_mlp_proj", 4 * d_model * d_model + d_model),
        ):
            layers.append(LayerSpec(name, params, 2.0 * params * seq))
    layers.append(LayerSpec("ln_f", 2 * d_model, 0.0))
    layers.append(LayerSpec("lm_head", d_model * vocab,
                            dense_flops(d_model, vocab) * seq))
    return ModelSpec(
        name="transformer_lm",
        layers=tuple(layers),
        batch_size=8,
        samples_per_sec=12.0,   # sequences/s per worker, compute bound
        sample_unit="sequences",
    )


def main() -> None:
    model = transformer_lm()
    print(model.describe())
    print()

    cluster = ClusterConfig(n_workers=4, bandwidth_gbps=10.0)
    base = simulate(model, baseline(), cluster, iterations=5, warmup=2)
    print(f"baseline : {base.throughput / 4:6.2f} seq/s per worker")

    print("\nslice-size tuning (the paper's Section 5.7 procedure):")
    best = None
    for slice_params in (10_000, 50_000, 200_000, 1_000_000):
        result = simulate(model, p3(slice_params=slice_params), cluster,
                          iterations=5, warmup=2)
        tput = result.throughput / 4
        marker = ""
        if best is None or tput > best[1]:
            best = (slice_params, tput)
            marker = "  <- best so far"
        print(f"  p3 @ {slice_params:>9,} params/slice: {tput:6.2f} seq/s"
              f"{marker}")

    print(f"\nP3 speedup at the tuned slice size: "
          f"{best[1] / (base.throughput / 4):.2f}x over baseline")


if __name__ == "__main__":
    main()
