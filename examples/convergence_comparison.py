"""Convergence comparison (the paper's Figures 11 and 15): real training
with exact synchronization (what P3 computes), Deep Gradient Compression
and asynchronous SGD.

P3 never changes gradient *values* — only their transmission schedule —
so its training curve is identical to synchronous SGD.  DGC sparsifies
and ASGD introduces staleness; both trade accuracy for speed.

Run:  python examples/convergence_comparison.py [epochs]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.training import (
    DGCConfig,
    TrainConfig,
    make_dataset,
    small_cnn,
    train_data_parallel,
)


def main(epochs: int = 12) -> None:
    dataset = make_dataset(n_train=2048, n_val=512, seed=0)
    print(f"dataset: {dataset.n_train} train / {dataset.n_val} val "
          f"synthetic images (CIFAR-10 stand-in)\n")

    runs = {}
    for method, extras in (
        ("exact", {}),
        ("dgc", {"dgc_config": DGCConfig(density=0.01)}),
        ("asgd", {}),
    ):
        rng = np.random.default_rng(2)
        network = small_cnn(rng)
        config = TrainConfig(n_workers=4, epochs=epochs, batch_size=64,
                             lr=0.05, seed=3)
        label = "p3 (exact sync)" if method == "exact" else method
        print(f"training with {label} ...")
        runs[label] = train_data_parallel(network, dataset, config,
                                          method=method, **extras)

    print(f"\n{'epoch':>6}", *[f"{k:>16}" for k in runs])
    for e in range(epochs):
        row = [f"{e + 1:>6}"]
        for res in runs.values():
            row.append(f"{res.val_accuracy[e]:>16.3f}")
        print(*row)

    print("\nfinal accuracy:")
    for label, res in runs.items():
        print(f"  {label:16s} {res.final_accuracy:.3f}")
    print("\nExpect: exact sync (= P3) highest, DGC slightly below, "
          "ASGD lowest (paper: 93% vs 88% for ASGD; DGC drops ~0.4%).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
