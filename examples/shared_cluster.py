"""Shared-cluster scenario: how do the baseline and P3 behave when other
tenants consume part of the network? (Extension of Section 5.3's
observation that P3 suits shared clusters.)

Also demonstrates straggler injection: synchronous SGD runs at the
slowest worker's pace; ASGD does not — the trade-off behind the paper's
Appendix B.2.

Run:  python examples/shared_cluster.py
"""

from __future__ import annotations

from repro import ClusterConfig, simulate
from repro.models import resnet50
from repro.strategies import asgd, baseline, p3


def main() -> None:
    model = resnet50()

    print("== background tenant traffic (ResNet-50 @ 6 Gbps, 4 workers) ==")
    print(f"{'load':>6} {'baseline':>10} {'p3':>10} {'speedup':>9}")
    for load in (0.0, 0.2, 0.4, 0.6):
        cfg = ClusterConfig(n_workers=4, bandwidth_gbps=6.0, background_load=load)
        base = simulate(model, baseline(), cfg, iterations=5, warmup=2)
        fast = simulate(model, p3(), cfg, iterations=5, warmup=2)
        print(f"{load:>6.1f} {base.throughput / 4:>10.1f} "
              f"{fast.throughput / 4:>10.1f} "
              f"{fast.speedup_over(base):>8.2f}x")

    print("\n== one straggling worker (ResNet-50 @ 10 Gbps, 4 workers) ==")
    print(f"{'slowdown':>9} {'sync(P3)':>10} {'asgd':>10}")
    for factor in (1.0, 1.5, 2.0):
        cfg = ClusterConfig(n_workers=4, bandwidth_gbps=10.0,
                            straggler_factors=(1.0, 1.0, 1.0, factor))
        sync = simulate(model, p3(), cfg, iterations=5, warmup=2)
        async_ = simulate(model, asgd(), cfg, iterations=5, warmup=2)
        print(f"{factor:>9.1f} {sync.throughput / 4:>10.1f} "
              f"{async_.throughput / 4:>10.1f}")

    print("\nTakeaways: P3's relative advantage survives contention "
          "(it needs less peak bandwidth); ASGD shrugs off stragglers "
          "but pays in accuracy (see examples/convergence_comparison.py).")


if __name__ == "__main__":
    main()
