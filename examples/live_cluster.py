"""Live cluster demo: run the SAME training job three ways and compare.

1. In-process ``DistributedStore`` loop (ground truth).
2. ``repro.live`` — real worker/server processes over localhost TCP with
   a priority-scheduled, rate-shaped transport, once with FIFO scheduling
   (baseline) and once with P3 priorities.
3. ``repro.sim`` — the discrete-event simulator's prediction for the
   same workload and bandwidth.

Prints the bit-identity check and the live-vs-simulated speedup.

Run:  python examples/live_cluster.py   (or: make live-demo)
"""

from __future__ import annotations

from repro.analysis.calibration import calibrate
from repro.live import LiveClusterConfig


def demo_config() -> LiveClusterConfig:
    """2 workers + 2 shards, a small MLP, and a 20 Mbit/s shaped link —
    slow enough that communication dominates and scheduling matters."""
    return LiveClusterConfig(
        n_workers=2,
        n_servers=2,
        iterations=5,
        warmup=1,
        in_size=16,
        hidden=32,
        depth=2,
        slice_params=5_000,
        rate_bytes_per_s=2_500_000.0,  # 20 Mbit/s
        heartbeat_interval_s=0.05,
    )


def main() -> None:
    cfg = demo_config()
    print(f"Launching live cluster: {cfg.n_workers} workers + "
          f"{cfg.n_servers} server shards over localhost TCP "
          f"({cfg.rate_bytes_per_s * 8 / 1e6:.0f} Mbit/s shaped)...")
    report = calibrate(cfg)
    print()
    print(report.summary())
    print()
    verdict = "agree" if report.agrees() else "DISAGREE"
    print(f"Live speedup {report.live_speedup:.2f}x vs simulated "
          f"{report.sim_speedup:.2f}x — predictions {verdict}.")


if __name__ == "__main__":
    main()
