"""Bandwidth-sensitivity study (the paper's Figure 7) for any model.

Sweeps interface bandwidth and plots throughput for Baseline, Slicing
and P3 directly in the terminal.

Run:  python examples/bandwidth_sensitivity.py [model]
      python examples/bandwidth_sensitivity.py vgg19
"""

from __future__ import annotations

import sys

from repro.analysis import ascii_plot, fig7_bandwidth_sweep
from repro.analysis.series import speedup


def main(model_name: str = "vgg19") -> None:
    print(f"sweeping bandwidth for {model_name} (this runs ~20 simulations)...")
    fig = fig7_bandwidth_sweep(model_name, iterations=5)

    print()
    print(ascii_plot(fig))
    print()
    print(fig.table())

    ratios = speedup(fig, over="baseline", of="p3")
    best_idx = ratios.y.argmax()
    print(f"\nP3 peak speedup: {ratios.y[best_idx]:.2f}x at "
          f"{ratios.x[best_idx]:g} Gbps")
    print("Paper peaks: ResNet-50 1.25x, InceptionV3 1.18x, "
          "VGG-19 1.66x, Sockeye 1.38x")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vgg19")
